//! The differential kernel-oracle battery: every fast backend against
//! the naive `Reference` loops on every layer kind, region shape, and
//! error case proptest can throw at it — grouped/depthwise
//! convolutions, stride/padding edge cases, non-multiple-of-8
//! remainders, dirty-scratch reuse, full maps, row strips, grid tiles
//! with halos, and halo-short failures.
//!
//! Two equality regimes:
//!
//! - **f32 backends** (`Im2colGemm`, `Simd`): `Tensor == Tensor`,
//!   exact bit patterns — the kernels preserve each output element's
//!   addition chain, so there is nothing to tolerate. The vectorized
//!   backend's max-ulp distance from the reference is **zero** by
//!   contract.
//! - **`Int8`**: quantization is lossy by design, so outputs are held
//!   to the *analytic* per-channel bound
//!   [`QuantizedLayer::channel_tolerance`] (worst-case rounding of
//!   weights and activations propagated through the i32 accumulator),
//!   plus 2 ulp of the reference value for the two dequantization
//!   roundings (`acc as f32 * scale`, then `+ bias`) — the documented
//!   max-ulp bound of the int8 arithmetic itself. Across shards of the
//!   same model the int8 backend is still **bit-exactly**
//!   self-consistent, because activation scales are static per layer.

use pico_model::{
    grid_split_even, rows_split_even, ConvSpec, Layer, Model, PoolKind, PoolSpec, Region2, Rows,
    Shape,
};
use pico_tensor::{Engine, EngineBackend, QuantizedUnit, Scratch, Tensor, TensorError};
use proptest::prelude::*;

/// One generated layer before shape validation.
#[derive(Debug, Clone, Copy)]
enum Pick {
    Conv {
        kh: usize,
        kw: usize,
        stride: usize,
        padding: usize,
        /// 0 = dense, 1 = two groups (if divisible), 2 = depthwise.
        grouping: u8,
        /// Output channels per group.
        out_per_group: usize,
    },
    Pool {
        kernel: usize,
        stride: usize,
        padding: usize,
        avg: bool,
    },
}

fn arb_pick() -> impl Strategy<Value = Pick> {
    prop_oneof![
        3 => (1usize..=3, 1usize..=3, 1usize..=2, 0usize..=2, 0u8..=2, 1usize..=3).prop_map(
            |(kh, kw, stride, padding, grouping, out_per_group)| Pick::Conv {
                kh,
                kw,
                stride,
                padding,
                grouping,
                out_per_group,
            }
        ),
        1 => (2usize..=3, 1usize..=2, 0usize..=1, any::<bool>()).prop_map(
            |(kernel, stride, padding, avg)| Pick::Pool {
                kernel,
                stride,
                padding,
                avg,
            }
        ),
    ]
}

/// Random conv/pool chains over a 12x12 input, including grouped and
/// depthwise convolutions and padded average pooling. Invalid picks
/// (shape collapse, padding >= kernel) are skipped, keeping every
/// generated model runnable.
fn arb_model() -> impl Strategy<Value = Model> {
    proptest::collection::vec(arb_pick(), 1..5).prop_map(|picks| {
        let input = Shape::new(4, 12, 12);
        let mut units: Vec<pico_model::Unit> = Vec::new();
        let mut shape = input;
        for (i, pick) in picks.into_iter().enumerate() {
            let layer = match pick {
                Pick::Conv {
                    kh,
                    kw,
                    stride,
                    padding,
                    grouping,
                    out_per_group,
                } => {
                    let groups = match grouping {
                        0 => 1,
                        1 if shape.channels.is_multiple_of(2) => 2,
                        1 => 1,
                        _ => shape.channels,
                    };
                    if padding >= kh.min(kw) {
                        continue;
                    }
                    Layer::conv(
                        format!("c{i}"),
                        ConvSpec {
                            in_channels: shape.channels,
                            out_channels: groups * out_per_group,
                            kernel: (kh, kw),
                            stride: (stride, stride),
                            padding: (padding, padding),
                            groups,
                        },
                    )
                }
                Pick::Pool {
                    kernel,
                    stride,
                    padding,
                    avg,
                } => {
                    if padding >= kernel {
                        continue;
                    }
                    Layer::pool(
                        format!("p{i}"),
                        PoolSpec {
                            kind: if avg { PoolKind::Avg } else { PoolKind::Max },
                            kernel: (kernel, kernel),
                            stride: (stride, stride),
                            padding: (padding, padding),
                        },
                    )
                }
            };
            if let Ok(next) = layer.output_shape(shape) {
                if next.height >= 2 && next.width >= 2 {
                    shape = next;
                    units.push(layer.into());
                }
            }
        }
        if units.is_empty() {
            units.push(Layer::conv("fb", ConvSpec::square(4, 3, 3, 1, 1)).into());
        }
        Model::new("diff", input, units).expect("chain is consistent")
    })
}

/// Engines over identical seeded weights, one per backend.
fn engine_pair(model: &Model, seed: u64) -> (Engine<'_>, Engine<'_>) {
    (
        Engine::with_seed(model, seed).with_backend(EngineBackend::Reference),
        Engine::with_seed(model, seed).with_backend(EngineBackend::Im2colGemm),
    )
}

/// The fast f32 backends, each of which must be bit-identical to
/// `Reference` (the first entry of [`EngineBackend::BIT_EXACT`]).
const FAST_BIT_EXACT: [EngineBackend; 2] = [EngineBackend::Im2colGemm, EngineBackend::Simd];

/// The oracle plus one engine per fast bit-exact backend, all sharing
/// seeded weights.
fn oracle_and_fast(model: &Model, seed: u64) -> (Engine<'_>, Vec<(EngineBackend, Engine<'_>)>) {
    let oracle = Engine::with_seed(model, seed).with_backend(EngineBackend::Reference);
    let fast = FAST_BIT_EXACT
        .iter()
        .map(|&b| (b, oracle.fork_backend(b)))
        .collect();
    (oracle, fast)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Full-map inference is bit-identical between the reference and
    /// every fast f32 backend.
    #[test]
    fn full_maps_are_bit_identical(model in arb_model(), seed in 0u64..1000) {
        let (reference, fast) = oracle_and_fast(&model, seed);
        let input = Tensor::random(model.input_shape(), seed.wrapping_add(1));
        let want = reference.infer(&input).expect("reference inference works");
        for (backend, engine) in &fast {
            let got = engine.infer(&input).expect("fast inference works");
            prop_assert_eq!(&got, &want, "backend {}", backend);
        }
    }

    /// Every row strip of every even split matches the oracle under
    /// every fast backend, with one dirty scratch pool reused across
    /// strips *and* backends (recycled buffers must be fully
    /// overwritten, never leak stale values).
    #[test]
    fn row_strips_are_bit_identical(
        model in arb_model(),
        parts in 1usize..4,
        seed in 0u64..1000,
    ) {
        let (reference, fast) = oracle_and_fast(&model, seed);
        let input = Tensor::random(model.input_shape(), seed.wrapping_add(2));
        let seg = model.full_segment();
        let h = model.output_shape().height;
        let mut scratch = Scratch::new();
        for rows in rows_split_even(Rows::full(h), parts) {
            if rows.is_empty() {
                continue;
            }
            let need = model.segment_input_rows(seg, rows);
            let tile = input.slice_rows(need).expect("halo available");
            let want = reference
                .infer_region(seg, rows, &tile)
                .expect("reference region works");
            for (backend, engine) in &fast {
                let got = engine
                    .infer_region2_with(
                        &mut scratch,
                        seg,
                        Region2::new(rows, Rows::full(model.output_shape().width)),
                        &tile,
                    )
                    .expect("fast region works");
                prop_assert_eq!(&got, &want, "backend {}", backend);
                scratch.give(got.into_vec());
            }
        }
    }

    /// Every grid tile of every even 2-D split matches the oracle
    /// under every fast backend.
    #[test]
    fn grid_tiles_are_bit_identical(
        model in arb_model(),
        gr in 1usize..3,
        gc in 1usize..3,
        seed in 0u64..1000,
    ) {
        let (reference, fast) = oracle_and_fast(&model, seed);
        let input = Tensor::random(model.input_shape(), seed.wrapping_add(3));
        let out = model.output_shape();
        let seg = model.full_segment();
        for region in grid_split_even(out.height, out.width, gr, gc) {
            let need = model.segment_input_region(seg, region);
            let tile = input.slice_region(need).expect("halo available");
            let want = reference
                .infer_region2(seg, region, &tile)
                .expect("reference region works");
            for (backend, engine) in &fast {
                let got = engine
                    .infer_region2(seg, region, &tile)
                    .expect("fast region works");
                prop_assert_eq!(&got, &want, "backend {}", backend);
            }
        }
    }

    /// A halo-short tile fails with the *same* error on every backend —
    /// variant and fields, not just "some error".
    #[test]
    fn halo_short_tiles_fail_identically(model in arb_model(), seed in 0u64..1000) {
        let (reference, fast) = oracle_and_fast(&model, seed);
        let input = Tensor::random(model.input_shape(), seed.wrapping_add(4));
        let seg = model.full_segment();
        let h = model.output_shape().height;
        let in_h = model.input_shape().height;
        prop_assume!(h >= 2);
        // The bottom half's receptive field; a tile starting one row
        // below it is short exactly when the field reaches row 0's side.
        let rows = Rows::new(h / 2, h);
        let need = model.segment_input_rows(seg, rows);
        prop_assume!(need.start + 1 < in_h);
        let tile = input
            .slice_rows(Rows::new(need.start + 1, in_h))
            .expect("slice is in range");
        let want = reference.infer_region(seg, rows, &tile);
        prop_assert!(want.is_err(), "tile was genuinely short");
        for (backend, engine) in &fast {
            let got = engine.infer_region(seg, rows, &tile);
            prop_assert_eq!(&got, &want, "backend {}", backend);
        }
        let int8 = reference.fork_backend(EngineBackend::Int8);
        prop_assert_eq!(int8.infer_region(seg, rows, &tile), want);
    }

    /// Int8 shards stitch bit-exactly to full int8 inference for any
    /// (model, shard) pair: activation scales are static per layer, so
    /// a region sees the identical quantization a full map does.
    #[test]
    fn int8_shards_stitch_bit_exactly_to_full_int8(
        model in arb_model(),
        parts in 1usize..4,
        seed in 0u64..1000,
    ) {
        let int8 = Engine::with_seed(&model, seed).with_backend(EngineBackend::Int8);
        let input = Tensor::random(model.input_shape(), seed.wrapping_add(5));
        let full = int8.infer(&input).expect("int8 inference works");
        let seg = model.full_segment();
        let h = model.output_shape().height;
        let tiles: Vec<Tensor> = rows_split_even(Rows::full(h), parts)
            .into_iter()
            .filter(|r| !r.is_empty())
            .map(|rows| {
                let need = model.segment_input_rows(seg, rows);
                let tile = input.slice_rows(need).expect("halo available");
                int8.infer_region(seg, rows, &tile).expect("int8 region works")
            })
            .collect();
        let stitched = Tensor::stitch_rows(&tiles).expect("tiles stitch");
        prop_assert_eq!(stitched, full);
    }
}

#[test]
fn fc_and_relu_tails_match_exactly() {
    // Deterministic conv -> pool -> fc chain: the GEMV path and its
    // fused ReLU against the reference dot products.
    let model = Model::new(
        "fc-tail",
        Shape::new(3, 12, 12),
        vec![
            Layer::conv("c", ConvSpec::square(3, 8, 3, 1, 1)).into(),
            Layer::pool("p", PoolSpec::max(2, 2)).into(),
            Layer::fc("fc", 8 * 6 * 6, 32).into(),
        ],
    )
    .unwrap();
    for seed in 0..8 {
        let (reference, fast) = oracle_and_fast(&model, seed);
        let input = Tensor::random(model.input_shape(), seed ^ 0x5a);
        let want = reference.infer(&input).unwrap();
        for (backend, engine) in &fast {
            assert_eq!(engine.infer(&input).unwrap(), want, "seed {seed} {backend}");
        }
    }
}

#[test]
fn int8_error_stays_within_the_analytic_channel_bound() {
    // Single dense conv: output channel oc occupies the contiguous
    // slice [oc*h*w, (oc+1)*h*w), so every element can be held to its
    // own channel's worst-case quantization bound — plus 2 ulp of the
    // reference value for the dequantization's two f32 roundings (see
    // the module doc's error-regime contract).
    let model = Model::new(
        "int8-bound",
        Shape::new(6, 12, 12),
        vec![Layer::conv("c", ConvSpec::square(6, 16, 3, 1, 1)).into()],
    )
    .unwrap();
    for seed in 0..10u64 {
        let reference = Engine::with_seed(&model, seed).with_backend(EngineBackend::Reference);
        let int8 = reference.fork_backend(EngineBackend::Int8);
        let quant = int8.quantized().expect("int8 engine carries tables");
        let QuantizedUnit::Layer(Some(layer)) = quant.unit(0) else {
            panic!("conv unit quantizes to a layer table");
        };
        let input = Tensor::random(model.input_shape(), seed ^ 0xA8);
        let want = reference.infer(&input).unwrap();
        let got = int8.infer(&input).unwrap();
        let out = model.output_shape();
        let pixels = out.height * out.width;
        for (idx, (&w, &g)) in want.data().iter().zip(got.data()).enumerate() {
            let oc = idx / pixels;
            let tol = layer.channel_tolerance(oc) + 2.0 * (w.abs() * f32::EPSILON);
            assert!(
                (w - g).abs() <= tol,
                "seed {seed} oc {oc}: |{w} - {g}| > {tol}"
            );
        }
    }
}

#[test]
fn wrong_channel_inputs_fail_identically() {
    let model = Model::new(
        "chan",
        Shape::new(4, 8, 8),
        vec![Layer::conv("c", ConvSpec::square(4, 4, 3, 1, 1)).into()],
    )
    .unwrap();
    let (reference, fast) = engine_pair(&model, 3);
    let bad = Tensor::random(Shape::new(3, 8, 8), 4);
    let want = reference.infer(&bad);
    let got = fast.infer(&bad);
    assert!(matches!(want, Err(TensorError::ShapeMismatch { .. })));
    assert_eq!(got, want);
}

#[test]
fn mixed_stride_padding_edge_cases_match() {
    // Hand-picked shapes that stress partial register tiles: output
    // widths 1, 7, 8, 9 around the NR=8 pixel tile, odd heights, and a
    // stride-2 asymmetric kernel.
    let cases = vec![
        ("w1", ConvSpec::square(2, 4, 3, 1, 0), Shape::new(2, 3, 3)),
        ("w7", ConvSpec::square(2, 5, 3, 1, 1), Shape::new(2, 7, 7)),
        ("w8", ConvSpec::square(3, 4, 3, 1, 1), Shape::new(3, 8, 8)),
        ("w9", ConvSpec::square(3, 4, 3, 1, 1), Shape::new(3, 9, 9)),
        (
            "asym",
            ConvSpec {
                in_channels: 2,
                out_channels: 6,
                kernel: (1, 7),
                stride: (1, 1),
                padding: (0, 3),
                groups: 1,
            },
            Shape::new(2, 9, 9),
        ),
        (
            "s2",
            ConvSpec {
                in_channels: 4,
                out_channels: 4,
                kernel: (3, 3),
                stride: (2, 2),
                padding: (1, 1),
                groups: 2,
            },
            Shape::new(4, 11, 11),
        ),
    ];
    for (name, spec, input_shape) in cases {
        let model = Model::new(name, input_shape, vec![Layer::conv(name, spec).into()]).unwrap();
        let (reference, fast) = oracle_and_fast(&model, 9);
        let input = Tensor::random(input_shape, 10);
        let want = reference.infer(&input).unwrap();
        for (backend, engine) in &fast {
            assert_eq!(engine.infer(&input).unwrap(), want, "{name} {backend}");
        }
    }
}

#[test]
fn remainder_k_and_n_shapes_cover_the_simd_tail_paths() {
    // K = in_channels·kh·kw and N = out_h·out_w chosen so neither is a
    // multiple of 8: the AVX2 kernel must take its scalar column tail
    // and the 4-row remainder on every one of these, bit-exactly.
    let cases = vec![
        // K = 3*3*3 = 27, N = 5*5 = 25, M = 5 (not a multiple of 4).
        (
            "k27n25m5",
            ConvSpec::square(3, 5, 3, 1, 1),
            Shape::new(3, 5, 5),
        ),
        // K = 1*1*5 = 5 (pointwise), N = 7*9 = 63, M = 9.
        ("k5n63m9", ConvSpec::pointwise(5, 9), Shape::new(5, 7, 9)),
        // K = 2*2*7 = 28, N = 3*3 = 9, M = 1 — everything is tail.
        (
            "k28n9m1",
            ConvSpec {
                in_channels: 7,
                out_channels: 1,
                kernel: (2, 2),
                stride: (2, 2),
                padding: (0, 0),
                groups: 1,
            },
            Shape::new(7, 6, 6),
        ),
    ];
    for (name, spec, input_shape) in cases {
        let model = Model::new(name, input_shape, vec![Layer::conv(name, spec).into()]).unwrap();
        let (reference, fast) = oracle_and_fast(&model, 31);
        let input = Tensor::random(input_shape, 32);
        let want = reference.infer(&input).unwrap();
        for (backend, engine) in &fast {
            assert_eq!(engine.infer(&input).unwrap(), want, "{name} {backend}");
        }
    }
}
