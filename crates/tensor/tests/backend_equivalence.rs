//! The differential kernel-oracle suite: the `Im2colGemm` backend must
//! be **bit-identical** to the naive `Reference` loops on every layer
//! kind, region shape, and error case proptest can throw at it —
//! grouped/depthwise convolutions, stride/padding edge cases, full
//! maps, row strips, grid tiles, and halo-short failures.
//!
//! Equality is `Tensor == Tensor` (exact f32 bit patterns via the
//! derived `Vec<f32>` comparison), not approximate: the GEMM preserves
//! each output element's addition chain, so there is nothing to
//! tolerate.

use pico_model::{
    grid_split_even, rows_split_even, ConvSpec, Layer, Model, PoolKind, PoolSpec, Rows, Shape,
};
use pico_tensor::{Engine, EngineBackend, Scratch, Tensor, TensorError};
use proptest::prelude::*;

/// One generated layer before shape validation.
#[derive(Debug, Clone, Copy)]
enum Pick {
    Conv {
        kh: usize,
        kw: usize,
        stride: usize,
        padding: usize,
        /// 0 = dense, 1 = two groups (if divisible), 2 = depthwise.
        grouping: u8,
        /// Output channels per group.
        out_per_group: usize,
    },
    Pool {
        kernel: usize,
        stride: usize,
        padding: usize,
        avg: bool,
    },
}

fn arb_pick() -> impl Strategy<Value = Pick> {
    prop_oneof![
        3 => (1usize..=3, 1usize..=3, 1usize..=2, 0usize..=2, 0u8..=2, 1usize..=3).prop_map(
            |(kh, kw, stride, padding, grouping, out_per_group)| Pick::Conv {
                kh,
                kw,
                stride,
                padding,
                grouping,
                out_per_group,
            }
        ),
        1 => (2usize..=3, 1usize..=2, 0usize..=1, any::<bool>()).prop_map(
            |(kernel, stride, padding, avg)| Pick::Pool {
                kernel,
                stride,
                padding,
                avg,
            }
        ),
    ]
}

/// Random conv/pool chains over a 12x12 input, including grouped and
/// depthwise convolutions and padded average pooling. Invalid picks
/// (shape collapse, padding >= kernel) are skipped, keeping every
/// generated model runnable.
fn arb_model() -> impl Strategy<Value = Model> {
    proptest::collection::vec(arb_pick(), 1..5).prop_map(|picks| {
        let input = Shape::new(4, 12, 12);
        let mut units: Vec<pico_model::Unit> = Vec::new();
        let mut shape = input;
        for (i, pick) in picks.into_iter().enumerate() {
            let layer = match pick {
                Pick::Conv {
                    kh,
                    kw,
                    stride,
                    padding,
                    grouping,
                    out_per_group,
                } => {
                    let groups = match grouping {
                        0 => 1,
                        1 if shape.channels.is_multiple_of(2) => 2,
                        1 => 1,
                        _ => shape.channels,
                    };
                    if padding >= kh.min(kw) {
                        continue;
                    }
                    Layer::conv(
                        format!("c{i}"),
                        ConvSpec {
                            in_channels: shape.channels,
                            out_channels: groups * out_per_group,
                            kernel: (kh, kw),
                            stride: (stride, stride),
                            padding: (padding, padding),
                            groups,
                        },
                    )
                }
                Pick::Pool {
                    kernel,
                    stride,
                    padding,
                    avg,
                } => {
                    if padding >= kernel {
                        continue;
                    }
                    Layer::pool(
                        format!("p{i}"),
                        PoolSpec {
                            kind: if avg { PoolKind::Avg } else { PoolKind::Max },
                            kernel: (kernel, kernel),
                            stride: (stride, stride),
                            padding: (padding, padding),
                        },
                    )
                }
            };
            if let Ok(next) = layer.output_shape(shape) {
                if next.height >= 2 && next.width >= 2 {
                    shape = next;
                    units.push(layer.into());
                }
            }
        }
        if units.is_empty() {
            units.push(Layer::conv("fb", ConvSpec::square(4, 3, 3, 1, 1)).into());
        }
        Model::new("diff", input, units).expect("chain is consistent")
    })
}

/// Engines over identical seeded weights, one per backend.
fn engine_pair(model: &Model, seed: u64) -> (Engine<'_>, Engine<'_>) {
    (
        Engine::with_seed(model, seed).with_backend(EngineBackend::Reference),
        Engine::with_seed(model, seed).with_backend(EngineBackend::Im2colGemm),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Full-map inference is bit-identical between backends.
    #[test]
    fn full_maps_are_bit_identical(model in arb_model(), seed in 0u64..1000) {
        let (reference, fast) = engine_pair(&model, seed);
        let input = Tensor::random(model.input_shape(), seed.wrapping_add(1));
        let want = reference.infer(&input).expect("reference inference works");
        let got = fast.infer(&input).expect("fast inference works");
        prop_assert_eq!(got, want);
    }

    /// Every row strip of every even split matches the oracle, with one
    /// dirty scratch pool reused across strips (recycled buffers must
    /// be fully overwritten, never leak stale values).
    #[test]
    fn row_strips_are_bit_identical(
        model in arb_model(),
        parts in 1usize..4,
        seed in 0u64..1000,
    ) {
        let (reference, fast) = engine_pair(&model, seed);
        let input = Tensor::random(model.input_shape(), seed.wrapping_add(2));
        let seg = model.full_segment();
        let h = model.output_shape().height;
        let mut scratch = Scratch::new();
        for rows in rows_split_even(Rows::full(h), parts) {
            if rows.is_empty() {
                continue;
            }
            let need = model.segment_input_rows(seg, rows);
            let tile = input.slice_rows(need).expect("halo available");
            let want = reference
                .infer_region(seg, rows, &tile)
                .expect("reference region works");
            let got = fast
                .infer_region2_with(
                    &mut scratch,
                    seg,
                    pico_model::Region2::new(rows, Rows::full(model.output_shape().width)),
                    &tile,
                )
                .expect("fast region works");
            prop_assert_eq!(got, want);
        }
    }

    /// Every grid tile of every even 2-D split matches the oracle.
    #[test]
    fn grid_tiles_are_bit_identical(
        model in arb_model(),
        gr in 1usize..3,
        gc in 1usize..3,
        seed in 0u64..1000,
    ) {
        let (reference, fast) = engine_pair(&model, seed);
        let input = Tensor::random(model.input_shape(), seed.wrapping_add(3));
        let out = model.output_shape();
        let seg = model.full_segment();
        for region in grid_split_even(out.height, out.width, gr, gc) {
            let need = model.segment_input_region(seg, region);
            let tile = input.slice_region(need).expect("halo available");
            let want = reference
                .infer_region2(seg, region, &tile)
                .expect("reference region works");
            let got = fast
                .infer_region2(seg, region, &tile)
                .expect("fast region works");
            prop_assert_eq!(got, want);
        }
    }

    /// A halo-short tile fails with the *same* error on both backends —
    /// variant and fields, not just "some error".
    #[test]
    fn halo_short_tiles_fail_identically(model in arb_model(), seed in 0u64..1000) {
        let (reference, fast) = engine_pair(&model, seed);
        let input = Tensor::random(model.input_shape(), seed.wrapping_add(4));
        let seg = model.full_segment();
        let h = model.output_shape().height;
        let in_h = model.input_shape().height;
        prop_assume!(h >= 2);
        // The bottom half's receptive field; a tile starting one row
        // below it is short exactly when the field reaches row 0's side.
        let rows = Rows::new(h / 2, h);
        let need = model.segment_input_rows(seg, rows);
        prop_assume!(need.start + 1 < in_h);
        let tile = input
            .slice_rows(Rows::new(need.start + 1, in_h))
            .expect("slice is in range");
        let want = reference.infer_region(seg, rows, &tile);
        let got = fast.infer_region(seg, rows, &tile);
        prop_assert!(want.is_err(), "tile was genuinely short");
        prop_assert_eq!(got, want);
    }
}

#[test]
fn fc_and_relu_tails_match_exactly() {
    // Deterministic conv -> pool -> fc chain: the GEMV path and its
    // fused ReLU against the reference dot products.
    let model = Model::new(
        "fc-tail",
        Shape::new(3, 12, 12),
        vec![
            Layer::conv("c", ConvSpec::square(3, 8, 3, 1, 1)).into(),
            Layer::pool("p", PoolSpec::max(2, 2)).into(),
            Layer::fc("fc", 8 * 6 * 6, 32).into(),
        ],
    )
    .unwrap();
    for seed in 0..8 {
        let (reference, fast) = engine_pair(&model, seed);
        let input = Tensor::random(model.input_shape(), seed ^ 0x5a);
        assert_eq!(
            fast.infer(&input).unwrap(),
            reference.infer(&input).unwrap(),
            "seed {seed}"
        );
    }
}

#[test]
fn wrong_channel_inputs_fail_identically() {
    let model = Model::new(
        "chan",
        Shape::new(4, 8, 8),
        vec![Layer::conv("c", ConvSpec::square(4, 4, 3, 1, 1)).into()],
    )
    .unwrap();
    let (reference, fast) = engine_pair(&model, 3);
    let bad = Tensor::random(Shape::new(3, 8, 8), 4);
    let want = reference.infer(&bad);
    let got = fast.infer(&bad);
    assert!(matches!(want, Err(TensorError::ShapeMismatch { .. })));
    assert_eq!(got, want);
}

#[test]
fn mixed_stride_padding_edge_cases_match() {
    // Hand-picked shapes that stress partial register tiles: output
    // widths 1, 7, 8, 9 around the NR=8 pixel tile, odd heights, and a
    // stride-2 asymmetric kernel.
    let cases = vec![
        ("w1", ConvSpec::square(2, 4, 3, 1, 0), Shape::new(2, 3, 3)),
        ("w7", ConvSpec::square(2, 5, 3, 1, 1), Shape::new(2, 7, 7)),
        ("w8", ConvSpec::square(3, 4, 3, 1, 1), Shape::new(3, 8, 8)),
        ("w9", ConvSpec::square(3, 4, 3, 1, 1), Shape::new(3, 9, 9)),
        (
            "asym",
            ConvSpec {
                in_channels: 2,
                out_channels: 6,
                kernel: (1, 7),
                stride: (1, 1),
                padding: (0, 3),
                groups: 1,
            },
            Shape::new(2, 9, 9),
        ),
        (
            "s2",
            ConvSpec {
                in_channels: 4,
                out_channels: 4,
                kernel: (3, 3),
                stride: (2, 2),
                padding: (1, 1),
                groups: 2,
            },
            Shape::new(4, 11, 11),
        ),
    ];
    for (name, spec, input_shape) in cases {
        let model = Model::new(name, input_shape, vec![Layer::conv(name, spec).into()]).unwrap();
        let (reference, fast) = engine_pair(&model, 9);
        let input = Tensor::random(input_shape, 10);
        assert_eq!(
            fast.infer(&input).unwrap(),
            reference.infer(&input).unwrap(),
            "{name}"
        );
    }
}
