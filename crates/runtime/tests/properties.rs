//! Property-based end-to-end checks: arbitrary small models through
//! arbitrary planners on real threads must reproduce single-device
//! inference bit-exactly.

use pico_model::{ConvSpec, Layer, Model, PoolSpec, Shape};
use pico_partition::{
    Cluster, CostParams, EarlyFused, GridFused, LayerWise, OptimalFused, PicoPlanner, PlanRequest,
    Planner,
};
use pico_runtime::PipelineRuntime;
use pico_tensor::{Engine, Tensor};
use proptest::prelude::*;

/// Small random conv/pool chains over a 12x12 input (thread-spawn cost
/// dominates, so keep the tensors tiny).
fn arb_model() -> impl Strategy<Value = Model> {
    let layer = prop_oneof![
        (1usize..=3, 1usize..=2, 0usize..=1).prop_map(|(k, s, p)| (k.max(s), s, p, true)),
        Just((2usize, 2usize, 0usize, false)),
    ];
    proptest::collection::vec(layer, 1..5).prop_map(|specs| {
        let input = Shape::new(2, 12, 12);
        let mut units: Vec<pico_model::Unit> = Vec::new();
        let mut shape = input;
        for (i, (k, s, p, conv)) in specs.into_iter().enumerate() {
            let layer = if conv {
                Layer::conv(
                    format!("c{i}"),
                    ConvSpec::square(shape.channels, 3, k, s, p),
                )
            } else {
                Layer::pool(format!("p{i}"), PoolSpec::max(k, s))
            };
            if let Ok(next) = layer.output_shape(shape) {
                if next.height >= 2 && next.width >= 2 {
                    shape = next;
                    units.push(layer.into());
                }
            }
        }
        if units.is_empty() {
            units.push(Layer::conv("fb", ConvSpec::square(2, 3, 3, 1, 1)).into());
        }
        Model::new("prop", input, units).expect("chain is consistent")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every planner's plan executes bit-exactly on threads, for random
    /// models and cluster sizes.
    #[test]
    fn random_plans_execute_bit_exactly(
        model in arb_model(),
        devices in 1usize..5,
        seed in 0u64..1000,
    ) {
        let cluster = Cluster::pi_cluster(devices, 1.0);
        let params = CostParams::wifi_50mbps();
        let engine = Engine::with_seed(&model, seed);
        let input = Tensor::random(model.input_shape(), seed.wrapping_add(1));
        let reference = engine.infer(&input).expect("monolithic inference works");

        let planners: Vec<Box<dyn Planner>> = vec![
            Box::new(LayerWise::new()),
            Box::new(EarlyFused::new()),
            Box::new(OptimalFused::new()),
            Box::new(PicoPlanner::new()),
            Box::new(GridFused::new()),
        ];
        for planner in planners {
            let plan = planner.plan(&PlanRequest::new(&model, &cluster, &params)).expect("planner succeeds");
            let diags = pico_partition::structural_diagnostics(&plan, &model, &cluster);
            prop_assert!(diags.is_empty(), "{}: {:?}", planner.name(), diags);
            let report = PipelineRuntime::new(&model, &plan, &engine)
                .run(vec![input.clone()])
                .expect("pipeline runs");
            prop_assert_eq!(&report.outputs[0], &reference, "{} diverged", planner.name());
        }
    }
}
