//! Static description of the channel graph the runtime builds for a
//! plan — the input to `pico-audit`'s switch-safety deadlock check.
//!
//! [`PipelineRuntime::run`](crate::PipelineRuntime::run) wires
//! `stage_count + 1` inter-stage queues (source → stage 0 → … →
//! collector) plus per-worker scatter/gather channels.
//! [`channel_topology`] mirrors that wiring as data, so a static pass
//! can reason about *who blocks on whom* without spawning a thread:
//! with bounded capacity, a sender stalls until the edge's receivers
//! drain; unbounded edges never block. One plan's topology is a chain
//! (trivially deadlock-free); the interesting case is the *union* of
//! two plans during a warm swap, where a device producing for plan A
//! while still draining plan B can close a wait cycle.

use pico_partition::Plan;

/// What bounds an edge's buffering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelKind {
    /// An inter-stage feature-map queue (`StageMsg`), bounded only when
    /// the runtime is built with a channel capacity.
    InterStage,
    /// A coordinator↔worker scatter/gather channel, always bounded to
    /// the stage's worker count.
    Worker,
}

/// One channel edge of the runtime's wiring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelEdge {
    /// Devices that send on this edge; empty for the task source.
    pub senders: Vec<usize>,
    /// Devices that receive from this edge; empty for the collector.
    pub receivers: Vec<usize>,
    /// `Some(cap)` when a full edge blocks its senders.
    pub capacity: Option<usize>,
    /// Which kind of channel this models.
    pub kind: ChannelKind,
}

impl ChannelEdge {
    /// Whether a sender can ever block on this edge.
    pub fn is_blocking(&self) -> bool {
        self.capacity.is_some()
    }
}

/// The channel graph [`PipelineRuntime`](crate::PipelineRuntime) would
/// build for a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelTopology {
    /// Number of pipeline stages.
    pub stages: usize,
    /// Every channel edge, inter-stage queues first (source to
    /// collector), then per-stage worker channels.
    pub edges: Vec<ChannelEdge>,
}

impl ChannelTopology {
    /// Edges on which a sender can block, i.e. the ones that matter
    /// for deadlock analysis.
    pub fn blocking_edges(&self) -> impl Iterator<Item = &ChannelEdge> {
        self.edges.iter().filter(|e| e.is_blocking())
    }
}

/// Describes the channel graph the runtime builds for `plan` with the
/// given inter-stage `capacity` (`None` = unbounded, the default):
/// `stage_count + 1` inter-stage queues where queue `i`'s senders are
/// stage `i-1`'s devices (the source for `i == 0`) and its receivers
/// stage `i`'s devices (the collector past the end), plus one
/// worker-channel edge per stage bounded to its worker count — exactly
/// the wiring of [`PipelineRuntime::run`](crate::PipelineRuntime::run).
pub fn channel_topology(plan: &Plan, capacity: Option<usize>) -> ChannelTopology {
    let devices_of = |s: usize| -> Vec<usize> {
        plan.stages[s]
            .assignments
            .iter()
            .filter(|a| !a.is_empty())
            .map(|a| a.device)
            .collect()
    };
    let n = plan.stages.len();
    let mut edges = Vec::with_capacity(2 * n + 1);
    for i in 0..=n {
        edges.push(ChannelEdge {
            senders: if i == 0 {
                Vec::new()
            } else {
                devices_of(i - 1)
            },
            receivers: if i == n { Vec::new() } else { devices_of(i) },
            capacity,
            kind: ChannelKind::InterStage,
        });
    }
    for s in 0..n {
        let workers = devices_of(s);
        let cap = workers.len().max(1);
        edges.push(ChannelEdge {
            senders: workers.clone(),
            receivers: workers,
            capacity: Some(cap),
            kind: ChannelKind::Worker,
        });
    }
    ChannelTopology { stages: n, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pico_model::zoo;
    use pico_partition::{Cluster, CostParams, PicoPlanner, PlanRequest, Planner};

    #[test]
    fn topology_mirrors_the_runtime_wiring() {
        let m = zoo::vgg16().features();
        let c = Cluster::pi_cluster(8, 1.0);
        let plan = PicoPlanner::new()
            .plan(&PlanRequest::new(&m, &c, &CostParams::default()))
            .unwrap();
        let topo = channel_topology(&plan, None);
        assert_eq!(topo.stages, plan.stage_count());
        let inter: Vec<&ChannelEdge> = topo
            .edges
            .iter()
            .filter(|e| e.kind == ChannelKind::InterStage)
            .collect();
        assert_eq!(inter.len(), plan.stage_count() + 1);
        // Source feeds stage 0; collector drains the last stage.
        assert!(inter[0].senders.is_empty());
        assert!(inter.last().unwrap().receivers.is_empty());
        // Unbounded inter-stage queues never block; worker channels do.
        assert!(inter.iter().all(|e| !e.is_blocking()));
        assert!(topo.blocking_edges().all(|e| e.kind == ChannelKind::Worker));
    }

    #[test]
    fn bounded_capacity_makes_inter_stage_edges_blocking() {
        let m = zoo::toy(4);
        let c = Cluster::pi_cluster(4, 1.0);
        let plan = PicoPlanner::new()
            .plan(&PlanRequest::new(&m, &c, &CostParams::default()))
            .unwrap();
        let topo = channel_topology(&plan, Some(2));
        assert!(topo
            .edges
            .iter()
            .filter(|e| e.kind == ChannelKind::InterStage)
            .all(|e| e.capacity == Some(2)));
    }
}
