//! Multi-threaded pipelined inference runtime.
//!
//! Executes a [`Plan`](pico_partition::Plan) the way the paper's C++
//! framework does (Fig. 6): each stage has a coordinator that takes
//! feature maps from its input queue, **splits** them into per-device
//! tiles, **scatters** to device workers, **gathers** their outputs,
//! **stitches** them, and forwards to the next stage. Stages and device
//! workers are real OS threads connected by channels, so pipelined plans
//! genuinely overlap work on different tasks.
//!
//! The runtime's contract with the rest of the workspace:
//!
//! * **Correctness** — the pipeline's outputs are bit-identical to
//!   single-device inference with the same engine (validated in tests);
//! * **Mechanics** — queues, split/stitch, and stage concurrency are
//!   real; wall-clock fidelity to the Raspberry Pi testbed is the
//!   simulator's job (`pico-sim`), not this crate's. An optional
//!   [`Throttle`] stretches per-device compute to cost-model
//!   proportions, which makes relative speedups observable on a laptop.
//! * **Failure injection** — a deterministic [`FailureSchedule`]
//!   scripts which devices fail (or stall) from which task on; without
//!   a recovery policy the error surfaces from [`PipelineRuntime::run`]
//!   instead of hanging the pipeline, and simultaneous failures are all
//!   reported ([`RuntimeError::Multiple`]).
//! * **Degraded-mode execution** — with a [`RecoveryPolicy`], failures
//!   are detected (explicit worker errors or response timeouts), the
//!   dead worker's shard is retried on a surviving device of the same
//!   stage, and a stage that loses every worker triggers a re-plan over
//!   the surviving cluster; the run resumes and the report carries
//!   [`RunReport::failures`] and [`RunReport::degraded_plan`].
//! * **Observability** — attach a [`pico_telemetry::Recorder`] via
//!   [`PipelineRuntime::builder`] and every scatter/compute/stitch step
//!   emits spans; [`RunReport::stage_stats`] is a derived view over
//!   those same timestamps, so trace and report can never disagree.
//!   With the default no-op recorder the serving path performs no
//!   telemetry clock reads, locks, or allocations.
//!
//! # Example
//!
//! ```
//! use pico_model::zoo;
//! use pico_partition::{Cluster, CostParams, PicoPlanner, PlanRequest, Planner};
//! use pico_runtime::PipelineRuntime;
//! use pico_tensor::{Engine, Tensor};
//!
//! let model = zoo::mnist_toy();
//! let cluster = Cluster::pi_cluster(4, 1.0);
//! let params = CostParams::wifi_50mbps();
//! let plan = PicoPlanner::default().plan(&PlanRequest::new(&model, &cluster, &params))?;
//!
//! let engine = Engine::with_seed(&model, 1);
//! let runtime = PipelineRuntime::new(&model, &plan, &engine);
//! let inputs = vec![Tensor::random(model.input_shape(), 2)];
//! let report = runtime.run(inputs.clone()).unwrap();
//! assert_eq!(report.outputs[0], engine.infer(&inputs[0]).unwrap());
//! # Ok::<(), pico_partition::PlanError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
mod fault;
mod runtime;
mod throttle;
pub mod topology;

pub use builder::RuntimeBuilder;
pub use error::RuntimeError;
pub use fault::{FailureRecord, FailureSchedule, InjectedFailure, RecoveryPolicy};
// Churn is modelled one layer down so the simulator can share it; the
// runtime consumes epochs as failure schedules (`FailureSchedule::from_leaves`).
pub use pico_partition::{
    ChurnEpoch, ChurnError, ChurnEvent, ChurnKind, ChurnMembership, ClusterSchedule,
};
pub use runtime::{
    ExecutionSession, PipelineRuntime, RunReport, StageStat, TaskTiming, DEFAULT_CHANNEL_CAPACITY,
};
pub use throttle::Throttle;
pub use topology::{channel_topology, ChannelEdge, ChannelKind, ChannelTopology};
