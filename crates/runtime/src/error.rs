use pico_partition::PlanError;
use pico_tensor::TensorError;

/// Errors surfaced by the pipeline runtime.
///
/// `#[non_exhaustive]`: downstream matches need a wildcard arm so new
/// failure modes can be added without a breaking release.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// A device worker failed while computing a task.
    DeviceFailed {
        /// The failed device's id.
        device: usize,
        /// Task index being processed.
        task: usize,
        /// Human-readable cause.
        cause: String,
    },
    /// A tensor operation failed inside a stage.
    Tensor(TensorError),
    /// A stage channel closed unexpectedly (a peer thread died).
    ChannelClosed {
        /// Which stage observed the closure.
        stage: usize,
    },
    /// An input tensor does not match the model's input shape.
    BadInput {
        /// Task index of the offending input.
        task: usize,
        /// Human-readable description.
        detail: String,
    },
    /// Several workers failed on the same task. The gather loop keeps
    /// every error it sees (not just the first), so a multi-device
    /// outage surfaces all of its casualties.
    Multiple {
        /// The individual failures, in worker order.
        errors: Vec<RuntimeError>,
    },
    /// A stage lost every worker at `task`: nothing is left to retry
    /// onto. With a recovery policy this triggers degraded re-planning
    /// instead of surfacing.
    StageLost {
        /// The stage with no surviving workers.
        stage: usize,
        /// First task the stage could not serve.
        task: usize,
    },
    /// Degraded re-planning failed: the planner could not produce a
    /// plan over the surviving cluster.
    RecoveryFailed {
        /// Devices excluded as dead, ascending.
        excluded: Vec<usize>,
        /// Why the re-plan failed (e.g. the cluster was exhausted).
        source: PlanError,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::DeviceFailed {
                device,
                task,
                cause,
            } => write!(f, "device {device} failed on task {task}: {cause}"),
            RuntimeError::Tensor(e) => write!(f, "tensor operation failed: {e}"),
            RuntimeError::ChannelClosed { stage } => {
                write!(f, "stage {stage} channel closed unexpectedly")
            }
            RuntimeError::BadInput { task, detail } => {
                write!(f, "bad input for task {task}: {detail}")
            }
            RuntimeError::Multiple { errors } => {
                write!(f, "{} workers failed: ", errors.len())?;
                for (i, e) in errors.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{e}")?;
                }
                Ok(())
            }
            RuntimeError::StageLost { stage, task } => {
                write!(f, "stage {stage} lost all of its workers at task {task}")
            }
            RuntimeError::RecoveryFailed { excluded, source } => write!(
                f,
                "re-planning without failed devices {excluded:?} failed: {source}"
            ),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Tensor(e) => Some(e),
            RuntimeError::RecoveryFailed { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<TensorError> for RuntimeError {
    fn from(e: TensorError) -> Self {
        RuntimeError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<RuntimeError>();
    }

    #[test]
    fn tensor_error_chains_source() {
        let e: RuntimeError = TensorError::Empty.into();
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn multiple_lists_every_casualty() {
        let e = RuntimeError::Multiple {
            errors: vec![
                RuntimeError::DeviceFailed {
                    device: 1,
                    task: 0,
                    cause: "x".into(),
                },
                RuntimeError::DeviceFailed {
                    device: 3,
                    task: 0,
                    cause: "y".into(),
                },
            ],
        };
        let msg = e.to_string();
        assert!(msg.contains("2 workers failed"), "got {msg}");
        assert!(
            msg.contains("device 1") && msg.contains("device 3"),
            "got {msg}"
        );
    }

    #[test]
    fn recovery_failed_chains_the_plan_error() {
        let e = RuntimeError::RecoveryFailed {
            excluded: vec![0, 2],
            source: PlanError::ClusterExhausted {
                excluded: vec![0, 2],
            },
        };
        assert!(std::error::Error::source(&e).is_some());
        assert!(e.to_string().contains("[0, 2]"));
    }
}
