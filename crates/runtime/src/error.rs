use pico_tensor::TensorError;

/// Errors surfaced by the pipeline runtime.
///
/// `#[non_exhaustive]`: downstream matches need a wildcard arm so new
/// failure modes can be added without a breaking release.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// A device worker failed while computing a task.
    DeviceFailed {
        /// The failed device's id.
        device: usize,
        /// Task index being processed.
        task: usize,
        /// Human-readable cause.
        cause: String,
    },
    /// A tensor operation failed inside a stage.
    Tensor(TensorError),
    /// A stage channel closed unexpectedly (a peer thread died).
    ChannelClosed {
        /// Which stage observed the closure.
        stage: usize,
    },
    /// An input tensor does not match the model's input shape.
    BadInput {
        /// Task index of the offending input.
        task: usize,
        /// Human-readable description.
        detail: String,
    },
}

impl std::fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RuntimeError::DeviceFailed {
                device,
                task,
                cause,
            } => write!(f, "device {device} failed on task {task}: {cause}"),
            RuntimeError::Tensor(e) => write!(f, "tensor operation failed: {e}"),
            RuntimeError::ChannelClosed { stage } => {
                write!(f, "stage {stage} channel closed unexpectedly")
            }
            RuntimeError::BadInput { task, detail } => {
                write!(f, "bad input for task {task}: {detail}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

#[doc(hidden)]
impl From<TensorError> for RuntimeError {
    fn from(e: TensorError) -> Self {
        RuntimeError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<RuntimeError>();
    }

    #[test]
    fn tensor_error_chains_source() {
        let e: RuntimeError = TensorError::Empty.into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
