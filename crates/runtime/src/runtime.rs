use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
#[cfg(test)]
use pico_model::Rows;
use pico_model::{Model, Region2, Segment};
use pico_partition::Plan;
use pico_tensor::{Engine, Tensor};

use crate::{RuntimeError, Throttle};

/// Completion record for one task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskTiming {
    /// Task index (submission order).
    pub task: usize,
    /// Seconds from run start to this task's final stitch.
    pub completed_at: f64,
}

/// Measured behaviour of one stage over a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageStat {
    /// Stage index.
    pub stage: usize,
    /// Tasks the stage processed.
    pub tasks: usize,
    /// Wall-clock seconds spent from scatter to stitch, summed over
    /// tasks (the stage's busy time; the bottleneck stage has the
    /// largest value).
    pub busy_secs: f64,
}

/// Outcome of a pipeline run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Final feature maps, in task order.
    pub outputs: Vec<Tensor>,
    /// Per-task completion times.
    pub timings: Vec<TaskTiming>,
    /// Per-stage busy accounting (ascending stage index).
    pub stage_stats: Vec<StageStat>,
    /// Total wall-clock time.
    pub elapsed: Duration,
}

impl RunReport {
    /// The stage that accumulated the most busy time — the measured
    /// pipeline bottleneck.
    pub fn bottleneck_stage(&self) -> Option<usize> {
        self.stage_stats
            .iter()
            .max_by(|a, b| {
                a.busy_secs
                    .partial_cmp(&b.busy_secs)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|s| s.stage)
    }
}

/// A message flowing between stages: a task's feature map, or the error
/// that killed it.
type StageMsg = Result<(usize, Tensor), RuntimeError>;

/// One worker's precomputed share of a stage.
#[derive(Debug, Clone)]
struct WorkerSpec {
    device: usize,
    seg: Segment,
    /// Output region this worker produces (full-width for strips).
    out_region: Region2,
    /// Input region (of the stage's input map) this worker needs.
    in_region: Region2,
    /// FLOPs per task (for throttling).
    flops: f64,
    /// Bytes moved per task (for throttling).
    comm_bytes: usize,
}

/// The Fig. 6 stage workflow as real threads (see the crate docs).
#[derive(Debug)]
pub struct PipelineRuntime<'a> {
    model: &'a Model,
    plan: &'a Plan,
    engine: &'a Engine<'a>,
    throttle: Option<Throttle>,
    failed: HashSet<usize>,
}

impl<'a> PipelineRuntime<'a> {
    /// Creates a runtime for a plan.
    ///
    /// # Panics
    ///
    /// Panics if the plan's stages do not tile the model contiguously
    /// (run [`Plan::validate`] first when the plan comes from outside
    /// this workspace).
    pub fn new(model: &'a Model, plan: &'a Plan, engine: &'a Engine<'a>) -> Self {
        let mut cursor = 0;
        for stage in &plan.stages {
            assert_eq!(
                stage.segment.start, cursor,
                "plan stages must tile the model contiguously"
            );
            cursor = stage.segment.end;
        }
        assert_eq!(cursor, model.len(), "plan must cover the whole model");
        PipelineRuntime {
            model,
            plan,
            engine,
            throttle: None,
            failed: HashSet::new(),
        }
    }

    /// Adds cost-model-proportional compute/transfer throttling.
    pub fn with_throttle(mut self, throttle: Throttle) -> Self {
        self.throttle = Some(throttle);
        self
    }

    /// Marks a device as failed: its worker errors instead of computing
    /// (failure-injection for tests and chaos experiments).
    pub fn with_failed_device(mut self, device: usize) -> Self {
        self.failed.insert(device);
        self
    }

    /// Precomputes every stage's worker shares.
    fn worker_specs(&self) -> Vec<Vec<WorkerSpec>> {
        self.plan
            .stages
            .iter()
            .map(|stage| {
                let in_shape = self.model.unit_input_shape(stage.segment.start);
                let out_shape = self.model.unit_output_shape(stage.segment.end - 1);
                stage
                    .assignments
                    .iter()
                    .filter(|a| !a.is_empty())
                    .map(|a| {
                        let out_region = a.region(out_shape.width);
                        let in_region = self.model.segment_input_region(stage.segment, out_region);
                        let flops = self.model.segment_region_flops(stage.segment, out_region);
                        WorkerSpec {
                            device: a.device,
                            seg: stage.segment,
                            out_region,
                            in_region,
                            flops,
                            comm_bytes: in_region.bytes(in_shape.channels)
                                + out_region.bytes(out_shape.channels),
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Pushes `inputs` through the pipeline and waits for all outputs.
    ///
    /// # Errors
    ///
    /// Returns the first [`RuntimeError`] any stage produced (failed
    /// device, halo/shape mismatch, bad input). Remaining in-flight
    /// tasks are discarded.
    pub fn run(&self, inputs: Vec<Tensor>) -> Result<RunReport, RuntimeError> {
        for (task, input) in inputs.iter().enumerate() {
            let expect = self.model.input_shape();
            if input.shape() != expect {
                return Err(RuntimeError::BadInput {
                    task,
                    detail: format!("expected {expect}, got {}", input.shape()),
                });
            }
        }
        let specs = self.worker_specs();
        let stage_count = self.plan.stages.len();
        let start = Instant::now();
        let total = inputs.len();

        let stats: Arc<Mutex<Vec<StageStat>>> = Arc::new(Mutex::new(
            (0..stage_count)
                .map(|s| StageStat {
                    stage: s,
                    tasks: 0,
                    busy_secs: 0.0,
                })
                .collect(),
        ));

        std::thread::scope(|scope| {
            // Inter-stage queues: entry i feeds stage i; the last feeds
            // the collector.
            let mut senders: Vec<Sender<StageMsg>> = Vec::with_capacity(stage_count + 1);
            let mut receivers: Vec<Receiver<StageMsg>> = Vec::with_capacity(stage_count + 1);
            for _ in 0..=stage_count {
                let (tx, rx) = unbounded::<StageMsg>();
                senders.push(tx);
                receivers.push(rx);
            }

            for (s, workers) in specs.iter().enumerate() {
                // Scatter/gather channels for this stage's workers.
                let mut work_tx: Vec<Sender<(usize, Tensor)>> = Vec::new();
                let mut done_rx: Vec<Receiver<StageMsg>> = Vec::new();
                for spec in workers.iter() {
                    let (wtx, wrx) = bounded::<(usize, Tensor)>(1);
                    let (dtx, drx) = bounded::<StageMsg>(1);
                    work_tx.push(wtx);
                    done_rx.push(drx);
                    let spec = spec.clone();
                    let engine = self.engine;
                    let throttle = self.throttle.clone();
                    let failed = self.failed.contains(&spec.device);
                    scope.spawn(move || {
                        while let Ok((task, tile)) = wrx.recv() {
                            let t0 = Instant::now();
                            let result = if failed {
                                Err(RuntimeError::DeviceFailed {
                                    device: spec.device,
                                    task,
                                    cause: "injected failure".to_owned(),
                                })
                            } else {
                                engine
                                    .infer_region2(spec.seg, spec.out_region, &tile)
                                    .map(|t| (task, t))
                                    .map_err(RuntimeError::from)
                            };
                            if let Some(th) = &throttle {
                                let target = th.compute_duration(spec.device, spec.flops)
                                    + th.transfer_duration(spec.comm_bytes);
                                let spent = t0.elapsed();
                                if target > spent {
                                    std::thread::sleep(target - spent);
                                }
                            }
                            if dtx.send(result).is_err() {
                                break;
                            }
                        }
                    });
                }

                // Stage coordinator: split -> scatter -> gather -> stitch.
                let rx_in = receivers[s].clone();
                let tx_out = senders[s + 1].clone();
                let in_regions: Vec<Region2> = workers.iter().map(|w| w.in_region).collect();
                let stage_stats = Arc::clone(&stats);
                scope.spawn(move || {
                    'tasks: while let Ok(msg) = rx_in.recv() {
                        let (task, fmap) = match msg {
                            Ok(pair) => pair,
                            Err(e) => {
                                let _ = tx_out.send(Err(e));
                                continue;
                            }
                        };
                        let busy_from = Instant::now();
                        // Scatter input tiles to every worker. Sending
                        // is interleaved with gathering below through the
                        // bounded(1) channels, but with one in-flight
                        // task per stage a simple scatter-then-gather
                        // never deadlocks.
                        for (wtx, region) in work_tx.iter().zip(&in_regions) {
                            let tile = match fmap.slice_region(*region) {
                                Ok(t) => t,
                                Err(e) => {
                                    let _ = tx_out.send(Err(e.into()));
                                    continue 'tasks;
                                }
                            };
                            if wtx.send((task, tile)).is_err() {
                                let _ = tx_out.send(Err(RuntimeError::ChannelClosed { stage: s }));
                                continue 'tasks;
                            }
                        }
                        // Gather per-worker outputs, in worker order.
                        let mut tiles = Vec::with_capacity(done_rx.len());
                        let mut failure = None;
                        for drx in &done_rx {
                            match drx.recv() {
                                Ok(Ok((t, tile))) => {
                                    debug_assert_eq!(t, task);
                                    tiles.push(tile);
                                }
                                Ok(Err(e)) => failure = failure.or(Some(e)),
                                Err(_) => {
                                    failure =
                                        failure.or(Some(RuntimeError::ChannelClosed { stage: s }));
                                }
                            }
                        }
                        if let Some(e) = failure {
                            let _ = tx_out.send(Err(e));
                            continue;
                        }
                        // Stitch and forward (handles strips and grids).
                        match Tensor::stitch_tiles(&tiles) {
                            Ok(out) => {
                                {
                                    let mut st = stage_stats.lock();
                                    st[s].tasks += 1;
                                    st[s].busy_secs += busy_from.elapsed().as_secs_f64();
                                }
                                if tx_out.send(Ok((task, out))).is_err() {
                                    break;
                                }
                            }
                            Err(e) => {
                                let _ = tx_out.send(Err(e.into()));
                            }
                        }
                    }
                });
            }

            // Feed all inputs into stage 0 and drop our sender so the
            // pipeline drains when done.
            let feeder = senders[0].clone();
            drop(senders);
            scope.spawn(move || {
                for (task, input) in inputs.into_iter().enumerate() {
                    if feeder.send(Ok((task, input))).is_err() {
                        break;
                    }
                }
            });

            // Collect outputs in task order (FIFO stages preserve order).
            let sink = receivers[stage_count].clone();
            drop(receivers);
            let mut outputs = Vec::with_capacity(total);
            let mut timings = Vec::with_capacity(total);
            for _ in 0..total {
                match sink.recv() {
                    Ok(Ok((task, out))) => {
                        debug_assert_eq!(task, outputs.len());
                        timings.push(TaskTiming {
                            task,
                            completed_at: start.elapsed().as_secs_f64(),
                        });
                        outputs.push(out);
                    }
                    Ok(Err(e)) => return Err(e),
                    Err(_) => return Err(RuntimeError::ChannelClosed { stage: stage_count }),
                }
            }
            Ok(RunReport {
                outputs,
                timings,
                stage_stats: stats.lock().clone(),
                elapsed: start.elapsed(),
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pico_model::zoo;
    use pico_partition::{
        Cluster, CostParams, EarlyFused, LayerWise, OptimalFused, PicoPlanner, Planner,
    };

    fn setup() -> (Model, Cluster, CostParams) {
        (
            zoo::mnist_toy(),
            Cluster::pi_cluster(4, 1.0),
            CostParams::wifi_50mbps(),
        )
    }

    fn outputs_match_reference(plan: &Plan, model: &Model, tasks: usize) {
        let engine = Engine::with_seed(model, 9);
        let runtime = PipelineRuntime::new(model, plan, &engine);
        let inputs: Vec<Tensor> = (0..tasks)
            .map(|i| Tensor::random(model.input_shape(), 100 + i as u64))
            .collect();
        let report = runtime.run(inputs.clone()).unwrap();
        assert_eq!(report.outputs.len(), tasks);
        for (i, input) in inputs.iter().enumerate() {
            let reference = engine.infer(input).unwrap();
            assert_eq!(report.outputs[i], reference, "task {i} diverged");
        }
        // Completions are ordered.
        assert!(report
            .timings
            .windows(2)
            .all(|w| w[0].completed_at <= w[1].completed_at));
    }

    #[test]
    fn pico_pipeline_outputs_match_single_device() {
        let (m, c, p) = setup();
        let plan = PicoPlanner.plan(&m, &c, &p).unwrap();
        outputs_match_reference(&plan, &m, 4);
    }

    #[test]
    fn every_scheme_executes_correctly() {
        let (m, c, p) = setup();
        for plan in [
            LayerWise.plan(&m, &c, &p).unwrap(),
            EarlyFused::new().plan(&m, &c, &p).unwrap(),
            OptimalFused.plan(&m, &c, &p).unwrap(),
        ] {
            outputs_match_reference(&plan, &m, 2);
        }
    }

    #[test]
    fn heterogeneous_plan_executes_correctly() {
        let m = zoo::mnist_toy();
        let c = Cluster::paper_heterogeneous_6();
        let p = CostParams::wifi_50mbps();
        let plan = PicoPlanner.plan(&m, &c, &p).unwrap();
        outputs_match_reference(&plan, &m, 3);
    }

    #[test]
    fn graph_model_executes_correctly() {
        // Residual blocks through the real pipeline.
        let m = pico_model::Model::new(
            "graphlet",
            pico_model::Shape::new(4, 24, 24),
            vec![
                pico_model::Layer::conv("stem", pico_model::ConvSpec::square(4, 8, 3, 1, 1)).into(),
                pico_model::Unit::Block(pico_model::Block::residual(
                    "res",
                    vec![
                        pico_model::Layer::conv("a", pico_model::ConvSpec::square(8, 8, 3, 1, 1)),
                        pico_model::Layer::conv("b", pico_model::ConvSpec::square(8, 8, 3, 1, 1)),
                    ],
                    vec![],
                )),
            ],
        )
        .unwrap();
        let c = Cluster::pi_cluster(4, 1.0);
        let p = CostParams::wifi_50mbps();
        let plan = PicoPlanner.plan(&m, &c, &p).unwrap();
        outputs_match_reference(&plan, &m, 2);
    }

    #[test]
    fn failed_device_surfaces_error() {
        let (m, c, p) = setup();
        let plan = PicoPlanner.plan(&m, &c, &p).unwrap();
        let victim = plan.stages[0].assignments[0].device;
        let engine = Engine::with_seed(&m, 1);
        let runtime = PipelineRuntime::new(&m, &plan, &engine).with_failed_device(victim);
        let err = runtime
            .run(vec![Tensor::random(m.input_shape(), 1)])
            .unwrap_err();
        assert!(
            matches!(err, RuntimeError::DeviceFailed { device, .. } if device == victim),
            "got {err}"
        );
    }

    #[test]
    fn bad_input_rejected_before_spawning() {
        let (m, c, p) = setup();
        let plan = PicoPlanner.plan(&m, &c, &p).unwrap();
        let engine = Engine::with_seed(&m, 1);
        let runtime = PipelineRuntime::new(&m, &plan, &engine);
        let bad = Tensor::random(pico_model::Shape::new(3, 8, 8), 0);
        assert!(matches!(
            runtime.run(vec![bad]),
            Err(RuntimeError::BadInput { task: 0, .. })
        ));
    }

    #[test]
    fn empty_input_list_is_fine() {
        let (m, c, p) = setup();
        let plan = PicoPlanner.plan(&m, &c, &p).unwrap();
        let engine = Engine::with_seed(&m, 1);
        let report = PipelineRuntime::new(&m, &plan, &engine)
            .run(vec![])
            .unwrap();
        assert!(report.outputs.is_empty());
    }

    #[test]
    #[should_panic(expected = "cover the whole model")]
    fn truncated_plan_panics() {
        let (m, c, p) = setup();
        let mut plan = PicoPlanner.plan(&m, &c, &p).unwrap();
        plan.stages.pop();
        if plan.stages.is_empty() {
            panic!("plan must cover the whole model"); // degenerate case
        }
        let engine = Engine::with_seed(&m, 1);
        let _ = PipelineRuntime::new(&m, &plan, &engine);
    }

    #[test]
    fn throttled_pipeline_still_correct_and_ordered() {
        let (m, c, p) = setup();
        let plan = PicoPlanner.plan(&m, &c, &p).unwrap();
        let engine = Engine::with_seed(&m, 2);
        // A very small scale keeps the test fast while exercising the
        // sleep path.
        let throttle = Throttle::new(c.clone(), p, 1e-7);
        let runtime = PipelineRuntime::new(&m, &plan, &engine).with_throttle(throttle);
        let inputs: Vec<Tensor> = (0..3).map(|i| Tensor::random(m.input_shape(), i)).collect();
        let report = runtime.run(inputs.clone()).unwrap();
        for (i, input) in inputs.iter().enumerate() {
            assert_eq!(report.outputs[i], engine.infer(input).unwrap());
        }
    }

    #[test]
    fn pipeline_overlaps_stage_sleeps() {
        // Stage overlap is observable even on a single-core host: with
        // a throttle whose sleeps dominate compute, N tasks through a
        // 2-stage pipeline take ~(N+1) * stage_time, not the sequential
        // 2N * stage_time.
        let m = pico_model::Model::new(
            "small",
            pico_model::Shape::new(4, 12, 12),
            vec![
                pico_model::Layer::conv("a", pico_model::ConvSpec::square(4, 4, 3, 1, 1)).into(),
                pico_model::Layer::conv("b", pico_model::ConvSpec::square(4, 4, 3, 1, 1)).into(),
            ],
        )
        .unwrap();
        let c = Cluster::pi_cluster(2, 1.0);
        // Effectively free network: the throttle should sleep for
        // compute only, and both stages sleep equally long.
        let p = CostParams::new(1e15);
        let h = m.output_shape().height;
        // Hand-built 2-stage pipeline, one device each.
        let plan = Plan::new(
            pico_partition::Scheme::Pico,
            pico_partition::ExecutionMode::Pipelined,
            vec![
                pico_partition::Stage::new(
                    Segment::new(0, 1),
                    vec![pico_partition::Assignment::new(0, Rows::full(h))],
                ),
                pico_partition::Stage::new(
                    Segment::new(1, 2),
                    vec![pico_partition::Assignment::new(1, Rows::full(h))],
                ),
            ],
        );
        let engine = Engine::with_seed(&m, 2);
        // Scale so each stage sleeps ~40 ms (compute is microseconds).
        let stage_flops = m.segment_flops(Segment::new(0, 1), Rows::full(h));
        let device_time = c.device(0).unwrap().compute_time(stage_flops);
        let scale = 0.04 / device_time;
        let throttle = Throttle::new(c.clone(), p, scale);
        let runtime = PipelineRuntime::new(&m, &plan, &engine).with_throttle(throttle);
        let n = 6;
        let inputs: Vec<Tensor> = (0..n).map(|i| Tensor::random(m.input_shape(), i)).collect();
        let report = runtime.run(inputs).unwrap();
        let elapsed = report.elapsed.as_secs_f64();
        // Sequential floor would be ~2 * n * 0.04 = 0.48 s; pipelined is
        // ~(n + 1) * 0.04 = 0.28 s. Assert we beat the sequential floor
        // with margin for scheduling noise.
        assert!(
            elapsed < 0.40,
            "elapsed {elapsed}s suggests no stage overlap"
        );
        assert!(elapsed > 0.20, "elapsed {elapsed}s is impossibly fast");
    }
}

#[cfg(test)]
mod stage_stat_tests {
    use super::*;
    use pico_model::zoo;
    use pico_partition::{Cluster, CostParams, PicoPlanner, Planner};

    #[test]
    fn stage_stats_count_every_task() {
        let m = zoo::mnist_toy();
        let c = Cluster::pi_cluster(4, 1.0);
        let plan = PicoPlanner
            .plan(&m, &c, &CostParams::wifi_50mbps())
            .unwrap();
        let engine = Engine::with_seed(&m, 3);
        let n: usize = 5;
        let inputs: Vec<Tensor> = (0..n)
            .map(|i| Tensor::random(m.input_shape(), i as u64))
            .collect();
        let report = PipelineRuntime::new(&m, &plan, &engine)
            .run(inputs)
            .unwrap();
        assert_eq!(report.stage_stats.len(), plan.stage_count());
        for st in &report.stage_stats {
            assert_eq!(st.tasks, n, "stage {}", st.stage);
            assert!(st.busy_secs > 0.0);
        }
        assert!(report.bottleneck_stage().is_some());
    }

    #[test]
    fn throttled_bottleneck_matches_cost_model() {
        // With a dominant throttle, the measured bottleneck stage is the
        // cost model's max-cost stage.
        let m = zoo::mnist_toy();
        let c = Cluster::pi_cluster(4, 1.0);
        let params = CostParams::wifi_50mbps();
        let plan = PicoPlanner.plan(&m, &c, &params).unwrap();
        if plan.stage_count() < 2 {
            return;
        }
        let cm = params.cost_model(&m);
        let metrics = cm.evaluate(&plan, &c);
        let analytic_bottleneck = metrics
            .stage_costs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total().partial_cmp(&b.1.total()).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        let engine = Engine::with_seed(&m, 3);
        // Scale chosen so sleeps (~tens of ms) dominate real compute.
        let throttle = Throttle::new(c.clone(), params, 1.0);
        let inputs: Vec<Tensor> = (0..4).map(|i| Tensor::random(m.input_shape(), i)).collect();
        let report = PipelineRuntime::new(&m, &plan, &engine)
            .with_throttle(throttle)
            .run(inputs)
            .unwrap();
        assert_eq!(report.bottleneck_stage(), Some(analytic_bottleneck));
    }
}
