use std::collections::HashSet;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
#[cfg(test)]
use pico_model::Rows;
use pico_model::{Model, Region2, Segment};
use pico_partition::Plan;
use pico_telemetry::{names, Ctx, Recorder};
use pico_tensor::{Engine, Tensor};

use crate::{RuntimeBuilder, RuntimeError, Throttle};

/// Completion record for one task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskTiming {
    /// Task index (submission order).
    pub task: usize,
    /// Seconds from run start to this task's final stitch.
    pub completed_at: f64,
}

/// Measured behaviour of one stage over a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageStat {
    /// Stage index.
    pub stage: usize,
    /// Tasks the stage processed.
    pub tasks: usize,
    /// Wall-clock seconds spent from scatter to stitch, summed over
    /// tasks (the stage's busy time; the bottleneck stage has the
    /// largest value).
    pub busy_secs: f64,
}

/// Outcome of a pipeline run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Final feature maps, in task order.
    pub outputs: Vec<Tensor>,
    /// Per-task completion times.
    pub timings: Vec<TaskTiming>,
    /// Per-stage busy accounting (ascending stage index).
    ///
    /// This is a *derived view* over the run's telemetry: each entry
    /// sums exactly the `(begin, end)` timestamp pairs that the stage's
    /// coordinator records as `stage_busy` spans, in the same order —
    /// so a trace recorded alongside the run reconciles with these
    /// numbers to the last bit (a property test in the workspace root
    /// asserts `==`, not approximate equality).
    pub stage_stats: Vec<StageStat>,
    /// Total wall-clock time.
    pub elapsed: Duration,
}

impl RunReport {
    /// The stage that accumulated the most busy time — the measured
    /// pipeline bottleneck.
    pub fn bottleneck_stage(&self) -> Option<usize> {
        self.stage_stats
            .iter()
            .max_by(|a, b| a.busy_secs.total_cmp(&b.busy_secs))
            .map(|s| s.stage)
    }

    /// Completed tasks per wall-clock second.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.timings.len() as f64 / secs
        } else {
            0.0
        }
    }

    /// Mean busy seconds per task of the bottleneck stage — the
    /// measured pipeline period (Sec. III: period = max stage time).
    /// `None` when no stage processed a task.
    pub fn measured_period(&self) -> Option<f64> {
        self.stage_stats
            .iter()
            .filter(|s| s.tasks > 0)
            .map(|s| s.busy_secs / s.tasks as f64)
            .max_by(f64::total_cmp)
    }
}

/// A message flowing between stages: a task's feature map, or the error
/// that killed it.
type StageMsg = Result<(usize, Tensor), RuntimeError>;

/// One worker's precomputed share of a stage.
#[derive(Debug, Clone)]
struct WorkerSpec {
    device: usize,
    seg: Segment,
    /// Output region this worker produces (full-width for strips).
    out_region: Region2,
    /// Input region (of the stage's input map) this worker needs.
    in_region: Region2,
    /// FLOPs per task (for throttling and telemetry).
    flops: f64,
    /// Bytes moved per task (for throttling and telemetry).
    comm_bytes: usize,
}

/// Per-stage communication volumes, precomputed for telemetry.
#[derive(Debug, Clone, Copy)]
struct StageComm {
    /// Bytes scattered to workers per task (sum of input tiles).
    scatter_bytes: u64,
    /// Of those, bytes beyond the exact input map — halo redundancy.
    halo_bytes: u64,
    /// Bytes of the stitched output map per task.
    output_bytes: u64,
}

/// The Fig. 6 stage workflow as real threads (see the crate docs).
#[derive(Debug)]
pub struct PipelineRuntime<'a> {
    pub(crate) model: &'a Model,
    pub(crate) plan: &'a Plan,
    pub(crate) engine: &'a Engine<'a>,
    pub(crate) throttle: Option<Throttle>,
    pub(crate) failed: HashSet<usize>,
    pub(crate) recorder: Recorder,
    pub(crate) channel_capacity: Option<usize>,
}

impl<'a> PipelineRuntime<'a> {
    /// Creates a runtime for a plan with default extras (no throttle,
    /// no telemetry, unbounded queues). Use
    /// [`builder`](PipelineRuntime::builder) to configure those.
    ///
    /// # Panics
    ///
    /// Panics if the plan's stages do not tile the model contiguously
    /// (run [`Plan::validate`] first when the plan comes from outside
    /// this workspace).
    pub fn new(model: &'a Model, plan: &'a Plan, engine: &'a Engine<'a>) -> Self {
        Self::builder(model, plan, engine).build()
    }

    /// Starts a [`RuntimeBuilder`]: named setters for the optional
    /// extras (telemetry recorder, throttle, queue capacity, failure
    /// injection) instead of positional arguments.
    pub fn builder(model: &'a Model, plan: &'a Plan, engine: &'a Engine<'a>) -> RuntimeBuilder<'a> {
        RuntimeBuilder::new(model, plan, engine)
    }

    pub(crate) fn validate_plan_shape(model: &Model, plan: &Plan) {
        let mut cursor = 0;
        for stage in &plan.stages {
            assert_eq!(
                stage.segment.start, cursor,
                "plan stages must tile the model contiguously"
            );
            cursor = stage.segment.end;
        }
        assert_eq!(cursor, model.len(), "plan must cover the whole model");
    }

    /// Adds cost-model-proportional compute/transfer throttling.
    #[deprecated(note = "use PipelineRuntime::builder(..).throttle(..)")]
    pub fn with_throttle(mut self, throttle: Throttle) -> Self {
        self.throttle = Some(throttle);
        self
    }

    /// Marks a device as failed: its worker errors instead of computing
    /// (failure-injection for tests and chaos experiments).
    #[deprecated(note = "use PipelineRuntime::builder(..).failed_device(..)")]
    pub fn with_failed_device(mut self, device: usize) -> Self {
        self.failed.insert(device);
        self
    }

    /// Precomputes every stage's worker shares.
    fn worker_specs(&self) -> Vec<Vec<WorkerSpec>> {
        self.plan
            .stages
            .iter()
            .map(|stage| {
                let in_shape = self.model.unit_input_shape(stage.segment.start);
                let out_shape = self.model.unit_output_shape(stage.segment.end - 1);
                stage
                    .assignments
                    .iter()
                    .filter(|a| !a.is_empty())
                    .map(|a| {
                        let out_region = a.region(out_shape.width);
                        let in_region = self.model.segment_input_region(stage.segment, out_region);
                        let flops = self.model.segment_region_flops(stage.segment, out_region);
                        WorkerSpec {
                            device: a.device,
                            seg: stage.segment,
                            out_region,
                            in_region,
                            flops,
                            comm_bytes: in_region.bytes(in_shape.channels)
                                + out_region.bytes(out_shape.channels),
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Per-stage communication volumes for telemetry.
    fn stage_comm(&self, specs: &[Vec<WorkerSpec>]) -> Vec<StageComm> {
        self.plan
            .stages
            .iter()
            .zip(specs)
            .map(|(stage, workers)| {
                let in_shape = self.model.unit_input_shape(stage.segment.start);
                let out_shape = self.model.unit_output_shape(stage.segment.end - 1);
                let scatter: usize = workers
                    .iter()
                    .map(|w| w.in_region.bytes(in_shape.channels))
                    .sum();
                let exact = Region2::full(in_shape.height, in_shape.width).bytes(in_shape.channels);
                StageComm {
                    scatter_bytes: scatter as u64,
                    halo_bytes: scatter.saturating_sub(exact) as u64,
                    output_bytes: Region2::full(out_shape.height, out_shape.width)
                        .bytes(out_shape.channels) as u64,
                }
            })
            .collect()
    }

    /// Pushes `inputs` through the pipeline and waits for all outputs.
    ///
    /// # Errors
    ///
    /// Returns the first [`RuntimeError`] any stage produced (failed
    /// device, halo/shape mismatch, bad input). Remaining in-flight
    /// tasks are discarded.
    pub fn run(&self, inputs: Vec<Tensor>) -> Result<RunReport, RuntimeError> {
        for (task, input) in inputs.iter().enumerate() {
            let expect = self.model.input_shape();
            if input.shape() != expect {
                return Err(RuntimeError::BadInput {
                    task,
                    detail: format!("expected {expect}, got {}", input.shape()),
                });
            }
        }
        let specs = self.worker_specs();
        let comm = self.stage_comm(&specs);
        let stage_count = self.plan.stages.len();
        let rec = &self.recorder;
        // One flag checked per task; the disabled path must not read
        // clocks, allocate, or lock for telemetry.
        let enabled = rec.is_enabled();
        let start = Instant::now();
        let total = inputs.len();

        std::thread::scope(|scope| {
            // Inter-stage queues: entry i feeds stage i; the last feeds
            // the collector. Unbounded by default (the paper's infinite
            // queue assumption); `channel_capacity` bounds them for
            // backpressure experiments.
            let make_queue = || match self.channel_capacity {
                Some(cap) => bounded::<StageMsg>(cap),
                None => unbounded::<StageMsg>(),
            };
            let mut senders: Vec<Sender<StageMsg>> = Vec::with_capacity(stage_count + 1);
            let mut receivers: Vec<Receiver<StageMsg>> = Vec::with_capacity(stage_count + 1);
            for _ in 0..=stage_count {
                let (tx, rx) = make_queue();
                senders.push(tx);
                receivers.push(rx);
            }

            // Coordinators hand their stats back through join handles —
            // no shared mutex on the serving path.
            let mut coord_handles = Vec::with_capacity(stage_count);

            for (s, workers) in specs.iter().enumerate() {
                // Scatter/gather channels for this stage's workers.
                let mut work_tx: Vec<Sender<(usize, Tensor)>> = Vec::new();
                let mut done_rx: Vec<Receiver<StageMsg>> = Vec::new();
                for spec in workers.iter() {
                    let (wtx, wrx) = bounded::<(usize, Tensor)>(1);
                    let (dtx, drx) = bounded::<StageMsg>(1);
                    work_tx.push(wtx);
                    done_rx.push(drx);
                    let spec = spec.clone();
                    let engine = self.engine;
                    let throttle = self.throttle.clone();
                    let failed = self.failed.contains(&spec.device);
                    let rec = rec.clone();
                    scope.spawn(move || {
                        while let Ok((task, tile)) = wrx.recv() {
                            let t0 = Instant::now();
                            let begin_ts = if enabled {
                                start.elapsed().as_secs_f64()
                            } else {
                                0.0
                            };
                            let result = if failed {
                                Err(RuntimeError::DeviceFailed {
                                    device: spec.device,
                                    task,
                                    cause: "injected failure".to_owned(),
                                })
                            } else {
                                engine
                                    .infer_region2(spec.seg, spec.out_region, &tile)
                                    .map(|t| (task, t))
                                    .map_err(RuntimeError::from)
                            };
                            if let Some(th) = &throttle {
                                let target = th.compute_duration(spec.device, spec.flops)
                                    + th.transfer_duration(spec.comm_bytes);
                                let spent = t0.elapsed();
                                if target > spent {
                                    std::thread::sleep(target - spent);
                                }
                            }
                            if enabled {
                                rec.span_at(
                                    names::COMPUTE,
                                    Ctx::stage(s).on_device(spec.device).for_task(task),
                                    begin_ts,
                                    start.elapsed().as_secs_f64(),
                                    spec.flops,
                                    spec.comm_bytes as u64,
                                );
                            }
                            if dtx.send(result).is_err() {
                                break;
                            }
                        }
                    });
                }

                // Stage coordinator: split -> scatter -> gather -> stitch.
                let rx_in = receivers[s].clone();
                let tx_out = senders[s + 1].clone();
                let in_regions: Vec<Region2> = workers.iter().map(|w| w.in_region).collect();
                let stage_comm = comm[s];
                let rec = rec.clone();
                coord_handles.push(scope.spawn(move || {
                    let mut tasks_done = 0usize;
                    let mut busy_secs = 0.0f64;
                    'tasks: while let Ok(msg) = rx_in.recv() {
                        let (task, fmap) = match msg {
                            Ok(pair) => pair,
                            Err(e) => {
                                let _ = tx_out.send(Err(e));
                                continue;
                            }
                        };
                        // The same begin/end pair feeds busy_secs AND
                        // the stage_busy span: RunReport.stage_stats is
                        // a derived view of the trace by construction.
                        let begin = start.elapsed().as_secs_f64();
                        // Scatter input tiles to every worker. Sending
                        // is interleaved with gathering below through the
                        // bounded(1) channels, but with one in-flight
                        // task per stage a simple scatter-then-gather
                        // never deadlocks.
                        for (wtx, region) in work_tx.iter().zip(&in_regions) {
                            let tile = match fmap.slice_region(*region) {
                                Ok(t) => t,
                                Err(e) => {
                                    let _ = tx_out.send(Err(e.into()));
                                    continue 'tasks;
                                }
                            };
                            if wtx.send((task, tile)).is_err() {
                                let _ = tx_out.send(Err(RuntimeError::ChannelClosed { stage: s }));
                                continue 'tasks;
                            }
                        }
                        if enabled {
                            let ctx = Ctx::stage(s).for_task(task);
                            rec.span_at(
                                names::SCATTER,
                                ctx,
                                begin,
                                start.elapsed().as_secs_f64(),
                                0.0,
                                stage_comm.scatter_bytes,
                            );
                            if stage_comm.halo_bytes > 0 {
                                rec.record(
                                    pico_telemetry::Event::instant(
                                        start.elapsed().as_secs_f64(),
                                        names::HALO_EXCHANGE,
                                        ctx,
                                    )
                                    .with_bytes(stage_comm.halo_bytes),
                                );
                            }
                        }
                        // Gather per-worker outputs, in worker order.
                        let mut tiles = Vec::with_capacity(done_rx.len());
                        let mut failure = None;
                        for drx in &done_rx {
                            match drx.recv() {
                                Ok(Ok((t, tile))) => {
                                    debug_assert_eq!(t, task);
                                    tiles.push(tile);
                                }
                                Ok(Err(e)) => failure = failure.or(Some(e)),
                                Err(_) => {
                                    failure =
                                        failure.or(Some(RuntimeError::ChannelClosed { stage: s }));
                                }
                            }
                        }
                        if let Some(e) = failure {
                            let _ = tx_out.send(Err(e));
                            continue;
                        }
                        // Stitch and forward (handles strips and grids).
                        let stitch_from = if enabled {
                            start.elapsed().as_secs_f64()
                        } else {
                            0.0
                        };
                        match Tensor::stitch_tiles(&tiles) {
                            Ok(out) => {
                                let end = start.elapsed().as_secs_f64();
                                tasks_done += 1;
                                busy_secs += end - begin;
                                if enabled {
                                    let ctx = Ctx::stage(s).for_task(task);
                                    rec.span_at(
                                        names::STITCH,
                                        ctx,
                                        stitch_from,
                                        end,
                                        0.0,
                                        stage_comm.output_bytes,
                                    );
                                    rec.span_at(names::STAGE_BUSY, ctx, begin, end, 0.0, 0);
                                    rec.count_at(
                                        names::BYTES_MOVED,
                                        Ctx::stage(s),
                                        end,
                                        (stage_comm.scatter_bytes + stage_comm.output_bytes) as f64,
                                    );
                                }
                                if tx_out.send(Ok((task, out))).is_err() {
                                    break;
                                }
                            }
                            Err(e) => {
                                let _ = tx_out.send(Err(e.into()));
                            }
                        }
                    }
                    StageStat {
                        stage: s,
                        tasks: tasks_done,
                        busy_secs,
                    }
                }));
            }

            // Feed all inputs into stage 0 and drop our sender so the
            // pipeline drains when done.
            let feeder = senders[0].clone();
            drop(senders);
            scope.spawn(move || {
                for (task, input) in inputs.into_iter().enumerate() {
                    if feeder.send(Ok((task, input))).is_err() {
                        break;
                    }
                }
            });

            // Collect outputs in task order (FIFO stages preserve order).
            let sink = receivers[stage_count].clone();
            drop(receivers);
            let mut outputs = Vec::with_capacity(total);
            let mut timings = Vec::with_capacity(total);
            for _ in 0..total {
                match sink.recv() {
                    Ok(Ok((task, out))) => {
                        debug_assert_eq!(task, outputs.len());
                        let completed_at = start.elapsed().as_secs_f64();
                        if enabled {
                            rec.count_at(names::TASKS_COMPLETED, Ctx::default(), completed_at, 1.0);
                        }
                        timings.push(TaskTiming { task, completed_at });
                        outputs.push(out);
                    }
                    Ok(Err(e)) => return Err(e),
                    Err(_) => return Err(RuntimeError::ChannelClosed { stage: stage_count }),
                }
            }
            drop(sink);
            // All tasks are through, so the channel-close cascade has
            // started; coordinators exit as their inputs drain and hand
            // back the per-stage accounting.
            let mut stage_stats = Vec::with_capacity(coord_handles.len());
            for (s, h) in coord_handles.into_iter().enumerate() {
                match h.join() {
                    Ok(stat) => stage_stats.push(stat),
                    Err(_) => return Err(RuntimeError::ChannelClosed { stage: s }),
                }
            }
            Ok(RunReport {
                outputs,
                timings,
                stage_stats,
                elapsed: start.elapsed(),
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pico_model::zoo;
    use pico_partition::{
        Cluster, CostParams, EarlyFused, LayerWise, OptimalFused, PicoPlanner, Planner,
    };

    fn setup() -> (Model, Cluster, CostParams) {
        (
            zoo::mnist_toy(),
            Cluster::pi_cluster(4, 1.0),
            CostParams::wifi_50mbps(),
        )
    }

    fn outputs_match_reference(plan: &Plan, model: &Model, tasks: usize) {
        let engine = Engine::with_seed(model, 9);
        let runtime = PipelineRuntime::new(model, plan, &engine);
        let inputs: Vec<Tensor> = (0..tasks)
            .map(|i| Tensor::random(model.input_shape(), 100 + i as u64))
            .collect();
        let report = runtime.run(inputs.clone()).unwrap();
        assert_eq!(report.outputs.len(), tasks);
        for (i, input) in inputs.iter().enumerate() {
            let reference = engine.infer(input).unwrap();
            assert_eq!(report.outputs[i], reference, "task {i} diverged");
        }
        // Completions are ordered.
        assert!(report
            .timings
            .windows(2)
            .all(|w| w[0].completed_at <= w[1].completed_at));
    }

    #[test]
    fn pico_pipeline_outputs_match_single_device() {
        let (m, c, p) = setup();
        let plan = PicoPlanner.plan_simple(&m, &c, &p).unwrap();
        outputs_match_reference(&plan, &m, 4);
    }

    #[test]
    fn every_scheme_executes_correctly() {
        let (m, c, p) = setup();
        for plan in [
            LayerWise.plan_simple(&m, &c, &p).unwrap(),
            EarlyFused::new().plan_simple(&m, &c, &p).unwrap(),
            OptimalFused.plan_simple(&m, &c, &p).unwrap(),
        ] {
            outputs_match_reference(&plan, &m, 2);
        }
    }

    #[test]
    fn heterogeneous_plan_executes_correctly() {
        let m = zoo::mnist_toy();
        let c = Cluster::paper_heterogeneous_6();
        let p = CostParams::wifi_50mbps();
        let plan = PicoPlanner.plan_simple(&m, &c, &p).unwrap();
        outputs_match_reference(&plan, &m, 3);
    }

    #[test]
    fn graph_model_executes_correctly() {
        // Residual blocks through the real pipeline.
        let m = pico_model::Model::new(
            "graphlet",
            pico_model::Shape::new(4, 24, 24),
            vec![
                pico_model::Layer::conv("stem", pico_model::ConvSpec::square(4, 8, 3, 1, 1)).into(),
                pico_model::Unit::Block(pico_model::Block::residual(
                    "res",
                    vec![
                        pico_model::Layer::conv("a", pico_model::ConvSpec::square(8, 8, 3, 1, 1)),
                        pico_model::Layer::conv("b", pico_model::ConvSpec::square(8, 8, 3, 1, 1)),
                    ],
                    vec![],
                )),
            ],
        )
        .unwrap();
        let c = Cluster::pi_cluster(4, 1.0);
        let p = CostParams::wifi_50mbps();
        let plan = PicoPlanner.plan_simple(&m, &c, &p).unwrap();
        outputs_match_reference(&plan, &m, 2);
    }

    #[test]
    fn failed_device_surfaces_error() {
        let (m, c, p) = setup();
        let plan = PicoPlanner.plan_simple(&m, &c, &p).unwrap();
        let victim = plan.stages[0].assignments[0].device;
        let engine = Engine::with_seed(&m, 1);
        let runtime = PipelineRuntime::builder(&m, &plan, &engine)
            .failed_device(victim)
            .build();
        let err = runtime
            .run(vec![Tensor::random(m.input_shape(), 1)])
            .unwrap_err();
        assert!(
            matches!(err, RuntimeError::DeviceFailed { device, .. } if device == victim),
            "got {err}"
        );
    }

    #[test]
    fn bad_input_rejected_before_spawning() {
        let (m, c, p) = setup();
        let plan = PicoPlanner.plan_simple(&m, &c, &p).unwrap();
        let engine = Engine::with_seed(&m, 1);
        let runtime = PipelineRuntime::new(&m, &plan, &engine);
        let bad = Tensor::random(pico_model::Shape::new(3, 8, 8), 0);
        assert!(matches!(
            runtime.run(vec![bad]),
            Err(RuntimeError::BadInput { task: 0, .. })
        ));
    }

    #[test]
    fn empty_input_list_is_fine() {
        let (m, c, p) = setup();
        let plan = PicoPlanner.plan_simple(&m, &c, &p).unwrap();
        let engine = Engine::with_seed(&m, 1);
        let report = PipelineRuntime::new(&m, &plan, &engine)
            .run(vec![])
            .unwrap();
        assert!(report.outputs.is_empty());
        assert_eq!(report.throughput(), 0.0);
        assert_eq!(report.measured_period(), None);
    }

    #[test]
    #[should_panic(expected = "cover the whole model")]
    fn truncated_plan_panics() {
        let (m, c, p) = setup();
        let mut plan = PicoPlanner.plan_simple(&m, &c, &p).unwrap();
        plan.stages.pop();
        if plan.stages.is_empty() {
            panic!("plan must cover the whole model"); // degenerate case
        }
        let engine = Engine::with_seed(&m, 1);
        let _ = PipelineRuntime::new(&m, &plan, &engine);
    }

    #[test]
    fn throttled_pipeline_still_correct_and_ordered() {
        let (m, c, p) = setup();
        let plan = PicoPlanner.plan_simple(&m, &c, &p).unwrap();
        let engine = Engine::with_seed(&m, 2);
        // A very small scale keeps the test fast while exercising the
        // sleep path.
        let throttle = Throttle::new(c.clone(), p, 1e-7);
        let runtime = PipelineRuntime::builder(&m, &plan, &engine)
            .throttle(throttle)
            .build();
        let inputs: Vec<Tensor> = (0..3).map(|i| Tensor::random(m.input_shape(), i)).collect();
        let report = runtime.run(inputs.clone()).unwrap();
        for (i, input) in inputs.iter().enumerate() {
            assert_eq!(report.outputs[i], engine.infer(input).unwrap());
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_positional_extras_still_work() {
        let (m, c, p) = setup();
        let plan = PicoPlanner.plan_simple(&m, &c, &p).unwrap();
        let engine = Engine::with_seed(&m, 2);
        let throttle = Throttle::new(c.clone(), p, 1e-9);
        let runtime = PipelineRuntime::new(&m, &plan, &engine).with_throttle(throttle);
        let report = runtime
            .run(vec![Tensor::random(m.input_shape(), 5)])
            .unwrap();
        assert_eq!(report.outputs.len(), 1);
    }

    #[test]
    fn bounded_queues_still_drain_the_pipeline() {
        let (m, c, p) = setup();
        let plan = PicoPlanner.plan_simple(&m, &c, &p).unwrap();
        let engine = Engine::with_seed(&m, 7);
        let runtime = PipelineRuntime::builder(&m, &plan, &engine)
            .channel_capacity(1)
            .build();
        let inputs: Vec<Tensor> = (0..5).map(|i| Tensor::random(m.input_shape(), i)).collect();
        let report = runtime.run(inputs.clone()).unwrap();
        for (i, input) in inputs.iter().enumerate() {
            assert_eq!(report.outputs[i], engine.infer(input).unwrap());
        }
    }

    #[test]
    fn pipeline_overlaps_stage_sleeps() {
        // Stage overlap is observable even on a single-core host: with
        // a throttle whose sleeps dominate compute, N tasks through a
        // 2-stage pipeline take ~(N+1) * stage_time, not the sequential
        // 2N * stage_time.
        let m = pico_model::Model::new(
            "small",
            pico_model::Shape::new(4, 12, 12),
            vec![
                pico_model::Layer::conv("a", pico_model::ConvSpec::square(4, 4, 3, 1, 1)).into(),
                pico_model::Layer::conv("b", pico_model::ConvSpec::square(4, 4, 3, 1, 1)).into(),
            ],
        )
        .unwrap();
        let c = Cluster::pi_cluster(2, 1.0);
        // Effectively free network: the throttle should sleep for
        // compute only, and both stages sleep equally long.
        let p = CostParams::new(1e15);
        let h = m.output_shape().height;
        // Hand-built 2-stage pipeline, one device each.
        let plan = Plan::new(
            pico_partition::Scheme::Pico,
            pico_partition::ExecutionMode::Pipelined,
            vec![
                pico_partition::Stage::new(
                    Segment::new(0, 1),
                    vec![pico_partition::Assignment::new(0, Rows::full(h))],
                ),
                pico_partition::Stage::new(
                    Segment::new(1, 2),
                    vec![pico_partition::Assignment::new(1, Rows::full(h))],
                ),
            ],
        );
        let engine = Engine::with_seed(&m, 2);
        // Scale so each stage sleeps ~40 ms (compute is microseconds).
        let stage_flops = m.segment_flops(Segment::new(0, 1), Rows::full(h));
        let device_time = c.device(0).unwrap().compute_time(stage_flops);
        let scale = 0.04 / device_time;
        let throttle = Throttle::new(c.clone(), p, scale);
        let runtime = PipelineRuntime::builder(&m, &plan, &engine)
            .throttle(throttle)
            .build();
        let n = 6;
        let inputs: Vec<Tensor> = (0..n).map(|i| Tensor::random(m.input_shape(), i)).collect();
        let report = runtime.run(inputs).unwrap();
        let elapsed = report.elapsed.as_secs_f64();
        // Sequential floor would be ~2 * n * 0.04 = 0.48 s; pipelined is
        // ~(n + 1) * 0.04 = 0.28 s. Assert we beat the sequential floor
        // with margin for scheduling noise.
        assert!(
            elapsed < 0.40,
            "elapsed {elapsed}s suggests no stage overlap"
        );
        assert!(elapsed > 0.20, "elapsed {elapsed}s is impossibly fast");
    }
}

#[cfg(test)]
mod stage_stat_tests {
    use super::*;
    use pico_model::zoo;
    use pico_partition::{Cluster, CostParams, PicoPlanner, Planner};
    use pico_telemetry::TraceSummary;

    #[test]
    fn stage_stats_count_every_task() {
        let m = zoo::mnist_toy();
        let c = Cluster::pi_cluster(4, 1.0);
        let plan = PicoPlanner
            .plan_simple(&m, &c, &CostParams::wifi_50mbps())
            .unwrap();
        let engine = Engine::with_seed(&m, 3);
        let n: usize = 5;
        let inputs: Vec<Tensor> = (0..n)
            .map(|i| Tensor::random(m.input_shape(), i as u64))
            .collect();
        let report = PipelineRuntime::new(&m, &plan, &engine)
            .run(inputs)
            .unwrap();
        assert_eq!(report.stage_stats.len(), plan.stage_count());
        for st in &report.stage_stats {
            assert_eq!(st.tasks, n, "stage {}", st.stage);
            assert!(st.busy_secs > 0.0);
        }
        assert!(report.bottleneck_stage().is_some());
        assert!(report.throughput() > 0.0);
        assert!(report.measured_period().unwrap() > 0.0);
    }

    #[test]
    fn recorded_spans_reconcile_exactly_with_stage_stats() {
        // The contract behind "stage_stats is a derived view": each
        // stage's busy_secs equals the sum of its stage_busy span
        // durations — exactly, not approximately, because both come
        // from the same timestamp pairs in the same order.
        let m = zoo::mnist_toy();
        let c = Cluster::pi_cluster(4, 1.0);
        let plan = PicoPlanner
            .plan_simple(&m, &c, &CostParams::wifi_50mbps())
            .unwrap();
        let engine = Engine::with_seed(&m, 4);
        let rec = Recorder::in_memory();
        let runtime = PipelineRuntime::builder(&m, &plan, &engine)
            .recorder(rec.clone())
            .build();
        let inputs: Vec<Tensor> = (0..4).map(|i| Tensor::random(m.input_shape(), i)).collect();
        let report = runtime.run(inputs).unwrap();

        let summary = TraceSummary::from_events(&rec.snapshot());
        let derived = summary.stage_busy();
        assert_eq!(derived.len(), report.stage_stats.len());
        for (stat, (stage, busy)) in report.stage_stats.iter().zip(derived) {
            assert_eq!(stat.stage as u32, stage);
            assert_eq!(stat.busy_secs, busy, "stage {stage} diverged");
        }
        assert_eq!(summary.tasks_completed, 4.0);
        // Worker compute spans carry flops/bytes payloads.
        assert!(summary.stages.iter().any(|s| s.flops > 0.0));
    }

    #[test]
    fn throttled_bottleneck_matches_cost_model() {
        // With a dominant throttle, the measured bottleneck stage is the
        // cost model's max-cost stage.
        let m = zoo::mnist_toy();
        let c = Cluster::pi_cluster(4, 1.0);
        let params = CostParams::wifi_50mbps();
        let plan = PicoPlanner.plan_simple(&m, &c, &params).unwrap();
        if plan.stage_count() < 2 {
            return;
        }
        let cm = params.cost_model(&m);
        let metrics = cm.evaluate(&plan, &c);
        let analytic_bottleneck = metrics
            .stage_costs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total().partial_cmp(&b.1.total()).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        let engine = Engine::with_seed(&m, 3);
        // Scale chosen so sleeps (~tens of ms) dominate real compute.
        let throttle = Throttle::new(c.clone(), params, 1.0);
        let inputs: Vec<Tensor> = (0..4).map(|i| Tensor::random(m.input_shape(), i)).collect();
        let report = PipelineRuntime::builder(&m, &plan, &engine)
            .throttle(throttle)
            .build()
            .run(inputs)
            .unwrap();
        assert_eq!(report.bottleneck_stage(), Some(analytic_bottleneck));
    }
}
