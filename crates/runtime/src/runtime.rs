use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TrySendError};
#[cfg(test)]
use pico_model::Rows;
use pico_model::{Model, Region2, Segment};
use pico_partition::{Plan, PlanRequest};
use pico_telemetry::{names, Ctx, Recorder};
use pico_tensor::{Engine, Scratch, Tensor};

use crate::fault::{FailureRecord, FailureSchedule, RecoveryPolicy, RetryKnobs};
use crate::{RuntimeBuilder, RuntimeError, Throttle};

/// Completion record for one task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskTiming {
    /// Task index (submission order).
    pub task: usize,
    /// Seconds from run start to this task's final stitch.
    pub completed_at: f64,
}

/// Measured behaviour of one stage over a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageStat {
    /// Stage index.
    pub stage: usize,
    /// Tasks the stage processed.
    pub tasks: usize,
    /// Wall-clock seconds spent from scatter to stitch, summed over
    /// tasks (the stage's busy time; the bottleneck stage has the
    /// largest value).
    pub busy_secs: f64,
}

/// Outcome of a pipeline run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Final feature maps, in task order.
    pub outputs: Vec<Tensor>,
    /// Per-task completion times.
    pub timings: Vec<TaskTiming>,
    /// Per-stage busy accounting (ascending stage index).
    ///
    /// This is a *derived view* over the run's telemetry: each entry
    /// sums exactly the `(begin, end)` timestamp pairs that the stage's
    /// coordinator records as `stage_busy` spans, in the same order —
    /// so a trace recorded alongside the run reconciles with these
    /// numbers to the last bit (a property test in the workspace root
    /// asserts `==`, not approximate equality). After a degraded
    /// re-plan the stats keep accumulating by stage index, so the
    /// reconciliation holds across plan switches too.
    pub stage_stats: Vec<StageStat>,
    /// Total wall-clock time.
    pub elapsed: Duration,
    /// Device failures observed during the run (empty when nothing
    /// failed). A populated list alongside a full set of `outputs`
    /// means the run survived the outage.
    pub failures: Vec<FailureRecord>,
    /// The plan installed by the last degraded re-plan, when a stage
    /// lost every worker and the recovery policy re-planned over the
    /// surviving cluster. `None` when the original plan served the
    /// whole stream.
    pub degraded_plan: Option<Plan>,
}

impl RunReport {
    /// The stage that accumulated the most busy time — the measured
    /// pipeline bottleneck.
    pub fn bottleneck_stage(&self) -> Option<usize> {
        self.stage_stats
            .iter()
            .max_by(|a, b| a.busy_secs.total_cmp(&b.busy_secs))
            .map(|s| s.stage)
    }

    /// Completed tasks per wall-clock second, or `None` when the wall
    /// duration is zero (trivially small streams on coarse clocks): a
    /// rate over a zero-length window is undefined, and returning a
    /// sentinel `0.0` invites division at call sites.
    pub fn throughput(&self) -> Option<f64> {
        let secs = self.elapsed.as_secs_f64();
        (secs > 0.0).then(|| self.timings.len() as f64 / secs)
    }

    /// Mean busy seconds per task of the bottleneck stage — the
    /// measured pipeline period (Sec. III: period = max stage time).
    /// `None` when no stage processed a task.
    pub fn measured_period(&self) -> Option<f64> {
        self.stage_stats
            .iter()
            .filter(|s| s.tasks > 0)
            .map(|s| s.busy_secs / s.tasks as f64)
            .max_by(f64::total_cmp)
    }
}

/// Inter-stage queue depth used when
/// [`RuntimeBuilder::channel_capacity`](crate::RuntimeBuilder::channel_capacity)
/// is not set. Every queue in the runtime is bounded (an unbounded
/// queue under a sustained overload is an out-of-memory kill deferred,
/// not avoided — and `cargo xtask lint` rule 8 bans unbounded channels
/// here); this default is deep enough that well-provisioned streams
/// never feel the bound.
pub const DEFAULT_CHANNEL_CAPACITY: usize = 64;

/// A message flowing between stages: a task's feature map, or the error
/// that killed it.
type StageMsg = Result<(usize, Tensor), RuntimeError>;

/// A work order to a device worker: compute `shard` of `task` from the
/// given input tile. Any worker of a stage can serve any shard of that
/// stage, which is what lets a dead worker's shard be retried on a
/// survivor with the output regions — and therefore the stitched
/// result — unchanged.
struct WorkUnit {
    task: usize,
    shard: usize,
    tile: Tensor,
}

/// A worker's answer: which task and shard, plus the computed tile or
/// the error that killed it.
type DoneMsg = (usize, usize, Result<Tensor, RuntimeError>);

/// One worker's precomputed share of a stage.
#[derive(Debug, Clone)]
struct WorkerSpec {
    device: usize,
    seg: Segment,
    /// Output region this worker produces (full-width for strips).
    out_region: Region2,
    /// Input region (of the stage's input map) this worker needs.
    in_region: Region2,
    /// FLOPs per task (for throttling and telemetry).
    flops: f64,
    /// Bytes moved per task (for throttling and telemetry).
    comm_bytes: usize,
}

/// Per-stage communication volumes, precomputed for telemetry.
#[derive(Debug, Clone, Copy)]
struct StageComm {
    /// Bytes scattered to workers per task (sum of input tiles).
    scatter_bytes: u64,
    /// Of those, bytes beyond the exact input map — halo redundancy.
    halo_bytes: u64,
    /// Bytes of the stitched output map per task.
    output_bytes: u64,
}

/// What one attempt (one plan over one slice of the task stream)
/// produced.
struct Attempt {
    outputs: Vec<Tensor>,
    timings: Vec<TaskTiming>,
    stage_stats: Vec<StageStat>,
    failures: Vec<FailureRecord>,
    dead_devices: Vec<usize>,
    /// `Some((stage, task))` when a stage lost every worker and the
    /// attempt stopped serving at `task`.
    lost: Option<(usize, usize)>,
}

/// The per-stage serving loop — split, scatter, gather, stitch — plus
/// failure detection (worker errors and response timeouts) and shard
/// retry on surviving workers when retry knobs are installed.
struct StageCoordinator {
    stage: usize,
    work_tx: Vec<Sender<WorkUnit>>,
    done_rx: Vec<Receiver<DoneMsg>>,
    in_regions: Vec<Region2>,
    devices: Vec<usize>,
    comm: StageComm,
    rec: Recorder,
    enabled: bool,
    start: Instant,
    knobs: Option<RetryKnobs>,
    dead: Vec<bool>,
    failures: Vec<FailureRecord>,
}

/// What a coordinator hands back through its join handle.
struct CoordOutcome {
    stat: StageStat,
    failures: Vec<FailureRecord>,
    dead_devices: Vec<usize>,
}

impl StageCoordinator {
    /// Classifies worker `w` as dead: records the failure and emits the
    /// `device_failed` instant. Idempotent per worker.
    fn mark_dead(&mut self, w: usize, task: usize, cause: String) {
        if self.dead[w] {
            return;
        }
        self.dead[w] = true;
        let device = self.devices[w];
        if self.enabled {
            self.rec.instant_at(
                names::DEVICE_FAILED,
                Ctx::stage(self.stage).on_device(device).for_task(task),
                self.start.elapsed().as_secs_f64(),
                0.0,
            );
        }
        self.failures.push(FailureRecord {
            device,
            stage: self.stage,
            task,
            cause,
        });
    }

    /// Emits the per-task scatter span and halo instant (first scatter
    /// of a task only — retries re-send tiles but the task's logical
    /// scatter already happened).
    fn record_scatter(&self, task: usize, begin: f64) {
        if !self.enabled {
            return;
        }
        let ctx = Ctx::stage(self.stage).for_task(task);
        self.rec.span_at(
            names::SCATTER,
            ctx,
            begin,
            self.start.elapsed().as_secs_f64(),
            0.0,
            self.comm.scatter_bytes,
        );
        if self.comm.halo_bytes > 0 {
            self.rec.record(
                pico_telemetry::Event::instant(
                    self.start.elapsed().as_secs_f64(),
                    names::HALO_EXCHANGE,
                    ctx,
                )
                .with_bytes(self.comm.halo_bytes),
            );
        }
    }

    /// Legacy (no recovery) task processing: shard `i` goes to worker
    /// `i`, and any worker error fails the task. Unlike the pre-fault
    /// gather loop, *every* error is kept, so a multi-device outage
    /// reports all of its casualties instead of only the first.
    fn process_task_legacy(
        &mut self,
        task: usize,
        fmap: &Tensor,
        begin: f64,
    ) -> Result<Vec<Tensor>, RuntimeError> {
        for (w, region) in self.in_regions.iter().enumerate() {
            let tile = fmap.slice_region(*region)?;
            if self.work_tx[w]
                .send(WorkUnit {
                    task,
                    shard: w,
                    tile,
                })
                .is_err()
            {
                return Err(RuntimeError::ChannelClosed { stage: self.stage });
            }
        }
        self.record_scatter(task, begin);
        let mut tiles = Vec::with_capacity(self.done_rx.len());
        let mut errors = Vec::new();
        for drx in &self.done_rx {
            match drx.recv() {
                Ok((t, _shard, Ok(tile))) => {
                    debug_assert_eq!(t, task);
                    tiles.push(tile);
                }
                Ok((_, _, Err(e))) => errors.push(e),
                Err(_) => errors.push(RuntimeError::ChannelClosed { stage: self.stage }),
            }
        }
        if errors.is_empty() {
            Ok(tiles)
        } else if errors.len() == 1 {
            Err(errors.remove(0))
        } else {
            Err(RuntimeError::Multiple { errors })
        }
    }

    /// Fault-tolerant task processing: shards of dead workers are
    /// rerouted to survivors; worker errors, disconnects, and (when
    /// configured) response timeouts classify a worker as dead; between
    /// rounds the coordinator backs off exponentially up to the retry
    /// cap. Errs with [`RuntimeError::StageLost`] when no worker
    /// survives to serve the task.
    fn process_task_retry(
        &mut self,
        task: usize,
        fmap: &Tensor,
        begin: f64,
        k: RetryKnobs,
    ) -> Result<Vec<Tensor>, RuntimeError> {
        let w_count = self.work_tx.len();
        let mut results: Vec<Option<Tensor>> = (0..w_count).map(|_| None).collect();
        let mut round = 0usize;
        loop {
            let pending: Vec<usize> = (0..w_count).filter(|&i| results[i].is_none()).collect();
            if pending.is_empty() {
                break;
            }
            let alive: Vec<usize> = (0..w_count).filter(|&i| !self.dead[i]).collect();
            if alive.is_empty() || round > k.max_retries {
                return Err(RuntimeError::StageLost {
                    stage: self.stage,
                    task,
                });
            }
            if round > 0 {
                let delay = k.delay_for_round(round);
                if !delay.is_zero() {
                    std::thread::sleep(delay);
                }
            }
            // Route: a shard stays on its home worker while that worker
            // is alive, otherwise round-robins over the survivors.
            let mut assigned: Vec<Vec<usize>> = vec![Vec::new(); w_count];
            for (i, &shard) in pending.iter().enumerate() {
                let w = if !self.dead[shard] {
                    shard
                } else {
                    alive[i % alive.len()]
                };
                if self.enabled && (round > 0 || self.dead[shard]) {
                    self.rec.instant_at(
                        names::TASK_RETRIED,
                        Ctx::stage(self.stage)
                            .on_device(self.devices[w])
                            .for_task(task),
                        self.start.elapsed().as_secs_f64(),
                        round as f64,
                    );
                }
                assigned[w].push(shard);
            }
            // Scatter this round's work units. Worker channels are
            // sized to the stage's worker count, so even one survivor
            // holding every rerouted shard cannot deadlock the
            // scatter-then-gather.
            let mut sent = vec![0usize; w_count];
            for (w, shards) in assigned.iter().enumerate() {
                for &shard in shards {
                    if self.dead[w] {
                        break;
                    }
                    let tile = fmap.slice_region(self.in_regions[shard])?;
                    if self.work_tx[w]
                        .send(WorkUnit { task, shard, tile })
                        .is_err()
                    {
                        self.mark_dead(w, task, "worker channel closed".to_owned());
                    } else {
                        sent[w] += 1;
                    }
                }
            }
            if round == 0 {
                self.record_scatter(task, begin);
            }
            // Gather. A worker that errs, hangs past the timeout, or
            // disconnects is marked dead; its unfinished shards stay
            // pending for the next round.
            for (w, &n_sent) in sent.iter().enumerate() {
                let mut expect = n_sent;
                while expect > 0 && !self.dead[w] {
                    let msg = match k.task_timeout {
                        Some(t) => match self.done_rx[w].recv_timeout(t) {
                            Ok(m) => Some(m),
                            Err(RecvTimeoutError::Timeout) => {
                                self.mark_dead(w, task, format!("no response within {t:?}"));
                                None
                            }
                            Err(RecvTimeoutError::Disconnected) => {
                                self.mark_dead(w, task, "worker channel closed".to_owned());
                                None
                            }
                        },
                        None => match self.done_rx[w].recv() {
                            Ok(m) => Some(m),
                            Err(_) => {
                                self.mark_dead(w, task, "worker channel closed".to_owned());
                                None
                            }
                        },
                    };
                    let Some((t, shard, result)) = msg else { break };
                    debug_assert_eq!(t, task);
                    expect -= 1;
                    match result {
                        Ok(tile) => results[shard] = Some(tile),
                        Err(e) => self.mark_dead(w, task, e.to_string()),
                    }
                }
            }
            round += 1;
        }
        Ok(results.into_iter().flatten().collect())
    }

    /// The serving loop: processes tasks from `rx_in` until the channel
    /// drains (or the stage is lost), forwarding stitched outputs — and
    /// errors — to `tx_out`. `seed_tasks`/`seed_busy` carry the running
    /// totals across re-plan attempts; they must seed the accumulators
    /// *before* serving so the additions happen in span begin order —
    /// the exact order `TraceSummary::stage_busy` sums in — keeping the
    /// reconciliation bit-exact (float addition is not associative).
    fn serve(
        mut self,
        rx_in: Receiver<StageMsg>,
        tx_out: Sender<StageMsg>,
        seed_tasks: usize,
        seed_busy: f64,
    ) -> CoordOutcome {
        let mut tasks_done = seed_tasks;
        let mut busy_secs = seed_busy;
        while let Ok(msg) = rx_in.recv() {
            let (task, fmap) = match msg {
                Ok(pair) => pair,
                Err(e) => {
                    let _ = tx_out.send(Err(e));
                    continue;
                }
            };
            // The same begin/end pair feeds busy_secs AND the
            // stage_busy span: RunReport.stage_stats is a derived view
            // of the trace by construction.
            let begin = self.start.elapsed().as_secs_f64();
            let gathered = match self.knobs {
                Some(k) => self.process_task_retry(task, &fmap, begin, k),
                None => self.process_task_legacy(task, &fmap, begin),
            };
            match gathered {
                Ok(tiles) => {
                    let stitch_from = if self.enabled {
                        self.start.elapsed().as_secs_f64()
                    } else {
                        0.0
                    };
                    // Stitch and forward (handles strips and grids).
                    match Tensor::stitch_tiles(&tiles) {
                        Ok(out) => {
                            let end = self.start.elapsed().as_secs_f64();
                            tasks_done += 1;
                            busy_secs += end - begin;
                            if self.enabled {
                                let ctx = Ctx::stage(self.stage).for_task(task);
                                self.rec.span_at(
                                    names::STITCH,
                                    ctx,
                                    stitch_from,
                                    end,
                                    0.0,
                                    self.comm.output_bytes,
                                );
                                self.rec.span_at(names::STAGE_BUSY, ctx, begin, end, 0.0, 0);
                                self.rec.count_at(
                                    names::BYTES_MOVED,
                                    Ctx::stage(self.stage),
                                    end,
                                    (self.comm.scatter_bytes + self.comm.output_bytes) as f64,
                                );
                            }
                            if tx_out.send(Ok((task, out))).is_err() {
                                break;
                            }
                        }
                        Err(e) => {
                            let _ = tx_out.send(Err(e.into()));
                        }
                    }
                }
                Err(e @ RuntimeError::StageLost { .. }) => {
                    // Nothing left to serve with: tell downstream (the
                    // marker reaches the sink in task order, after every
                    // earlier completed task) and stop serving.
                    let _ = tx_out.send(Err(e));
                    break;
                }
                Err(e) => {
                    let _ = tx_out.send(Err(e));
                }
            }
        }
        CoordOutcome {
            stat: StageStat {
                stage: self.stage,
                tasks: tasks_done,
                busy_secs,
            },
            failures: self.failures,
            dead_devices: self
                .dead
                .iter()
                .zip(&self.devices)
                .filter(|(d, _)| **d)
                .map(|(_, dev)| *dev)
                .collect(),
        }
    }
}

/// The Fig. 6 stage workflow as real threads (see the crate docs).
#[derive(Debug)]
pub struct PipelineRuntime<'a> {
    pub(crate) model: &'a Model,
    pub(crate) plan: &'a Plan,
    pub(crate) engine: &'a Engine<'a>,
    /// Whole-run backend override (`RuntimeBuilder::backend`), forked
    /// from `engine` at build time.
    pub(crate) default_fork: Option<Engine<'a>>,
    /// Per-device backend overrides (`RuntimeBuilder::device_backend`),
    /// each an engine fork sharing the original weights.
    pub(crate) device_forks: Vec<(usize, Engine<'a>)>,
    pub(crate) throttle: Option<Throttle>,
    pub(crate) schedule: FailureSchedule,
    pub(crate) recovery: Option<RecoveryPolicy>,
    pub(crate) recorder: Recorder,
    pub(crate) channel_capacity: Option<usize>,
}

impl<'a> PipelineRuntime<'a> {
    /// Creates a runtime for a plan with default extras (no throttle,
    /// no telemetry, default-bounded queues). Use
    /// [`builder`](PipelineRuntime::builder) to configure those.
    ///
    /// # Panics
    ///
    /// Panics if the plan's stages do not tile the model contiguously
    /// (run [`Plan::validate`] first when the plan comes from outside
    /// this workspace).
    pub fn new(model: &'a Model, plan: &'a Plan, engine: &'a Engine<'a>) -> Self {
        Self::builder(model, plan, engine).build()
    }

    /// Starts a [`RuntimeBuilder`]: named setters for the optional
    /// extras (telemetry recorder, throttle, queue capacity, failure
    /// injection, recovery policy) instead of positional arguments.
    pub fn builder(model: &'a Model, plan: &'a Plan, engine: &'a Engine<'a>) -> RuntimeBuilder<'a> {
        RuntimeBuilder::new(model, plan, engine)
    }

    /// The engine a device's worker threads dispatch to: its own fork
    /// when one was configured, else the whole-run fork, else the
    /// shared engine. Duplicate `device_backend` calls resolve to the
    /// last one.
    pub(crate) fn engine_for(&self, device: usize) -> &Engine<'a> {
        self.device_forks
            .iter()
            .rev()
            .find(|(d, _)| *d == device)
            .map(|(_, e)| e)
            .or(self.default_fork.as_ref())
            .unwrap_or(self.engine)
    }

    pub(crate) fn validate_plan_shape(model: &Model, plan: &Plan) {
        let mut cursor = 0;
        for stage in &plan.stages {
            assert_eq!(
                stage.segment.start, cursor,
                "plan stages must tile the model contiguously"
            );
            cursor = stage.segment.end;
        }
        assert_eq!(cursor, model.len(), "plan must cover the whole model");
    }

    /// Precomputes every stage's worker shares for `plan`.
    fn worker_specs(&self, plan: &Plan) -> Vec<Vec<WorkerSpec>> {
        plan.stages
            .iter()
            .map(|stage| {
                let in_shape = self.model.unit_input_shape(stage.segment.start);
                let out_shape = self.model.unit_output_shape(stage.segment.end - 1);
                stage
                    .assignments
                    .iter()
                    .filter(|a| !a.is_empty())
                    .map(|a| {
                        let out_region = a.region(out_shape.width);
                        let in_region = self.model.segment_input_region(stage.segment, out_region);
                        let flops = self.model.segment_region_flops(stage.segment, out_region);
                        WorkerSpec {
                            device: a.device,
                            seg: stage.segment,
                            out_region,
                            in_region,
                            flops,
                            comm_bytes: in_region.bytes(in_shape.channels)
                                + out_region.bytes(out_shape.channels),
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Per-stage communication volumes for telemetry.
    fn stage_comm(&self, plan: &Plan, specs: &[Vec<WorkerSpec>]) -> Vec<StageComm> {
        plan.stages
            .iter()
            .zip(specs)
            .map(|(stage, workers)| {
                let in_shape = self.model.unit_input_shape(stage.segment.start);
                let out_shape = self.model.unit_output_shape(stage.segment.end - 1);
                let scatter: usize = workers
                    .iter()
                    .map(|w| w.in_region.bytes(in_shape.channels))
                    .sum();
                let exact = Region2::full(in_shape.height, in_shape.width).bytes(in_shape.channels);
                StageComm {
                    scatter_bytes: scatter as u64,
                    halo_bytes: scatter.saturating_sub(exact) as u64,
                    output_bytes: Region2::full(out_shape.height, out_shape.width)
                        .bytes(out_shape.channels) as u64,
                }
            })
            .collect()
    }

    /// Pushes `inputs` through the pipeline and waits for all outputs.
    ///
    /// Without a recovery policy, the first failure aborts the run;
    /// with one (see [`RuntimeBuilder::recovery`]), failed devices are
    /// detected, their shards retried on surviving workers, and a stage
    /// that loses every worker triggers a degraded re-plan over the
    /// surviving cluster before the stream resumes — the report then
    /// carries the [`failures`](RunReport::failures) and the installed
    /// [`degraded_plan`](RunReport::degraded_plan).
    ///
    /// # Errors
    ///
    /// Returns the [`RuntimeError`] that stopped the stream: a failed
    /// device or halo/shape mismatch (without a policy;
    /// [`RuntimeError::Multiple`] lists simultaneous worker failures),
    /// a bad input, or [`RuntimeError::RecoveryFailed`] when degraded
    /// re-planning could not produce a plan. Remaining in-flight tasks
    /// are discarded.
    pub fn run(&self, inputs: Vec<Tensor>) -> Result<RunReport, RuntimeError> {
        for (task, input) in inputs.iter().enumerate() {
            let expect = self.model.input_shape();
            if input.shape() != expect {
                return Err(RuntimeError::BadInput {
                    task,
                    detail: format!("expected {expect}, got {}", input.shape()),
                });
            }
        }
        let start = pico_telemetry::clock::wall_now();
        match &self.recovery {
            None => {
                let a = self.attempt(self.plan, &inputs, 0, start, None, &[])?;
                debug_assert!(a.lost.is_none());
                Ok(RunReport {
                    outputs: a.outputs,
                    timings: a.timings,
                    stage_stats: a.stage_stats,
                    elapsed: start.elapsed(),
                    failures: a.failures,
                    degraded_plan: None,
                })
            }
            Some(policy) => self.run_with_recovery(policy, &inputs, start),
        }
    }

    /// The supervisor loop: runs attempts until the stream completes,
    /// re-planning over the surviving cluster whenever a stage loses
    /// every worker.
    fn run_with_recovery(
        &self,
        policy: &RecoveryPolicy,
        inputs: &[Tensor],
        start: Instant,
    ) -> Result<RunReport, RuntimeError> {
        let knobs = Some(policy.knobs());
        let mut outputs: Vec<Tensor> = Vec::with_capacity(inputs.len());
        let mut timings = Vec::with_capacity(inputs.len());
        let mut stage_stats: Vec<StageStat> = Vec::new();
        let mut failures = Vec::new();
        let mut excluded: Vec<usize> = Vec::new();
        let mut degraded: Option<Plan> = None;
        loop {
            let done = outputs.len();
            let plan_ref = degraded.as_ref().unwrap_or(self.plan);
            let a = self.attempt(plan_ref, &inputs[done..], done, start, knobs, &stage_stats)?;
            outputs.extend(a.outputs);
            timings.extend(a.timings);
            // Attempt stats are cumulative (seeded from the running
            // totals), so they replace rather than add.
            for st in a.stage_stats {
                if let Some(existing) = stage_stats.iter_mut().find(|e| e.stage == st.stage) {
                    *existing = st;
                } else {
                    stage_stats.push(st);
                }
            }
            stage_stats.sort_by_key(|s| s.stage);
            failures.extend(a.failures);
            let Some((stage, task)) = a.lost else { break };
            let before = excluded.len();
            for d in a.dead_devices {
                if !excluded.contains(&d) {
                    excluded.push(d);
                }
            }
            excluded.sort_unstable();
            if excluded.len() == before {
                // No new casualty to exclude — re-planning would loop
                // on the same plan, so surface the loss instead.
                return Err(RuntimeError::StageLost { stage, task });
            }
            let next = PlanRequest::new(self.model, &policy.cluster, &policy.params)
                .with_excluded_devices(&excluded)
                .and_then(|req| policy.planner.plan(&req))
                .map_err(|source| RuntimeError::RecoveryFailed {
                    excluded: excluded.clone(),
                    source,
                })?;
            Self::validate_plan_shape(self.model, &next);
            if self.recorder.is_enabled() {
                self.recorder.instant_at(
                    names::PLAN_DEGRADED,
                    Ctx::default().for_task(outputs.len()),
                    start.elapsed().as_secs_f64(),
                    excluded.len() as f64,
                );
            }
            degraded = Some(next);
        }
        Ok(RunReport {
            outputs,
            timings,
            stage_stats,
            elapsed: start.elapsed(),
            failures,
            degraded_plan: degraded,
        })
    }

    /// Runs `inputs` (task indices `base..base + inputs.len()`) through
    /// `plan` once. With retry knobs, worker failures are absorbed per
    /// stage and the attempt reports a lost stage instead of erroring.
    /// `prior_stats` seeds each stage's accounting so busy-time sums
    /// stay bit-exact with the telemetry across attempts.
    fn attempt(
        &self,
        plan: &Plan,
        inputs: &[Tensor],
        base: usize,
        start: Instant,
        knobs: Option<RetryKnobs>,
        prior_stats: &[StageStat],
    ) -> Result<Attempt, RuntimeError> {
        let specs = self.worker_specs(plan);
        let comm = self.stage_comm(plan, &specs);
        let stage_count = plan.stages.len();
        // One flag checked per task; the disabled path must not read
        // clocks, allocate, or lock for telemetry.
        let enabled = self.recorder.is_enabled();
        let rec = &self.recorder;
        let total = inputs.len();

        std::thread::scope(|scope| {
            let (feeder, sink, coord_handles) =
                self.spawn_stages(scope, &specs, &comm, start, knobs, prior_stats);

            // Feed all inputs into stage 0 and drop our sender so the
            // pipeline drains when done. Inputs are cloned on the way
            // in: the originals stay with the supervisor, which may
            // need to replay the uncompleted tail after a re-plan.
            scope.spawn(move || {
                for (i, input) in inputs.iter().enumerate() {
                    if feeder.send(Ok((base + i, input.clone()))).is_err() {
                        break;
                    }
                }
            });

            // Collect outputs in task order (FIFO stages preserve order).
            let mut outputs = Vec::with_capacity(total);
            let mut timings = Vec::with_capacity(total);
            let mut lost: Option<(usize, usize)> = None;
            let mut abort: Option<RuntimeError> = None;
            for _ in 0..total {
                match sink.recv() {
                    Ok(Ok((task, out))) => {
                        debug_assert_eq!(task, base + outputs.len());
                        let completed_at = start.elapsed().as_secs_f64();
                        if enabled {
                            rec.count_at(names::TASKS_COMPLETED, Ctx::default(), completed_at, 1.0);
                        }
                        timings.push(TaskTiming { task, completed_at });
                        outputs.push(out);
                    }
                    Ok(Err(RuntimeError::StageLost { stage, task })) if knobs.is_some() => {
                        lost = Some((stage, task));
                        break;
                    }
                    Ok(Err(e)) => {
                        abort = Some(e);
                        break;
                    }
                    Err(_) => {
                        abort = Some(RuntimeError::ChannelClosed { stage: stage_count });
                        break;
                    }
                }
            }
            // Dropping the sink starts (or finishes) the channel-close
            // cascade; coordinators exit as their inputs drain and hand
            // back the per-stage accounting.
            drop(sink);
            let mut stage_stats = Vec::with_capacity(coord_handles.len());
            let mut failures = Vec::new();
            let mut dead_devices = Vec::new();
            for (s, h) in coord_handles.into_iter().enumerate() {
                match h.join() {
                    Ok(outcome) => {
                        stage_stats.push(outcome.stat);
                        failures.extend(outcome.failures);
                        dead_devices.extend(outcome.dead_devices);
                    }
                    Err(_) => return Err(RuntimeError::ChannelClosed { stage: s }),
                }
            }
            if let Some(e) = abort {
                return Err(e);
            }
            Ok(Attempt {
                outputs,
                timings,
                stage_stats,
                failures,
                dead_devices,
                lost,
            })
        })
    }

    /// Spawns every stage's workers and coordinator onto `scope`, wired
    /// with bounded inter-stage queues. Returns the stage-0 feeder, the
    /// final-stage sink, and the coordinator join handles; all other
    /// channel endpoints are dropped here so the pipeline drains (and
    /// the coordinators exit) as soon as both returned endpoints go.
    fn spawn_stages<'env, 'scope>(
        &'env self,
        scope: &'scope std::thread::Scope<'scope, 'env>,
        specs: &[Vec<WorkerSpec>],
        comm: &[StageComm],
        start: Instant,
        knobs: Option<RetryKnobs>,
        prior_stats: &[StageStat],
    ) -> (
        Sender<StageMsg>,
        Receiver<StageMsg>,
        Vec<std::thread::ScopedJoinHandle<'scope, CoordOutcome>>,
    ) {
        let stage_count = specs.len();
        let rec = &self.recorder;
        let enabled = rec.is_enabled();
        // Inter-stage queues: entry i feeds stage i; the last feeds the
        // collector. Always bounded: the default depth approximates the
        // paper's infinite-queue assumption for well-provisioned
        // streams, while `channel_capacity` tightens it for
        // backpressure experiments.
        let cap = self.channel_capacity.unwrap_or(DEFAULT_CHANNEL_CAPACITY);
        let mut senders: Vec<Sender<StageMsg>> = Vec::with_capacity(stage_count + 1);
        let mut receivers: Vec<Receiver<StageMsg>> = Vec::with_capacity(stage_count + 1);
        for _ in 0..=stage_count {
            let (tx, rx) = bounded::<StageMsg>(cap);
            senders.push(tx);
            receivers.push(rx);
        }

        // Coordinators hand their stats back through join handles —
        // no shared mutex on the serving path.
        let mut coord_handles = Vec::with_capacity(stage_count);

        for (s, workers) in specs.iter().enumerate() {
            // Scatter/gather channels, sized to the worker count so
            // one survivor can hold every rerouted shard of a task
            // without blocking the coordinator.
            let cap = workers.len().max(1);
            let mut work_tx: Vec<Sender<WorkUnit>> = Vec::new();
            let mut done_rx: Vec<Receiver<DoneMsg>> = Vec::new();
            for spec in workers.iter() {
                let (wtx, wrx) = bounded::<WorkUnit>(cap);
                let (dtx, drx) = bounded::<DoneMsg>(cap);
                work_tx.push(wtx);
                done_rx.push(drx);
                let device = spec.device;
                let stage_specs: Vec<WorkerSpec> = workers.clone();
                let engine = self.engine_for(device);
                let throttle = self.throttle.clone();
                let schedule = self.schedule.clone();
                let rec = rec.clone();
                scope.spawn(move || {
                    // One scratch pool per worker thread: the fast
                    // backend reuses its im2col and output buffers
                    // across the whole task stream.
                    let mut scratch = Scratch::new();
                    while let Ok(WorkUnit { task, shard, tile }) = wrx.recv() {
                        let spec = &stage_specs[shard];
                        let t0 = pico_telemetry::clock::wall_now();
                        let begin_ts = if enabled {
                            start.elapsed().as_secs_f64()
                        } else {
                            0.0
                        };
                        let result = match schedule.injected(device, task) {
                            Some(fault) => {
                                if let Some(stall) = fault.stall {
                                    std::thread::sleep(stall);
                                }
                                Err(RuntimeError::DeviceFailed {
                                    device,
                                    task,
                                    cause: "injected failure".to_owned(),
                                })
                            }
                            None => engine
                                .infer_region2_with(&mut scratch, spec.seg, spec.out_region, &tile)
                                .map_err(RuntimeError::from),
                        };
                        // The input tile's buffer feeds the next
                        // task's intermediates.
                        scratch.give(tile.into_vec());
                        if let Some(th) = &throttle {
                            let target = th.compute_duration(device, spec.flops)
                                + th.transfer_duration(spec.comm_bytes);
                            let spent = t0.elapsed();
                            if target > spent {
                                std::thread::sleep(target - spent);
                            }
                        }
                        if enabled {
                            rec.span_at(
                                names::COMPUTE,
                                Ctx::stage(s).on_device(device).for_task(task),
                                begin_ts,
                                start.elapsed().as_secs_f64(),
                                spec.flops,
                                spec.comm_bytes as u64,
                            );
                        }
                        if dtx.send((task, shard, result)).is_err() {
                            break;
                        }
                    }
                });
            }

            let prior = prior_stats.iter().find(|st| st.stage == s);
            let seed_tasks = prior.map_or(0, |st| st.tasks);
            let seed_busy = prior.map_or(0.0, |st| st.busy_secs);
            let coordinator = StageCoordinator {
                stage: s,
                work_tx,
                done_rx,
                in_regions: workers.iter().map(|w| w.in_region).collect(),
                devices: workers.iter().map(|w| w.device).collect(),
                comm: comm[s],
                rec: rec.clone(),
                enabled,
                start,
                knobs,
                dead: vec![false; workers.len()],
                failures: Vec::new(),
            };
            let rx_in = receivers[s].clone();
            let tx_out = senders[s + 1].clone();
            coord_handles
                .push(scope.spawn(move || coordinator.serve(rx_in, tx_out, seed_tasks, seed_busy)));
        }

        let feeder = senders[0].clone();
        let sink = receivers[stage_count].clone();
        drop(senders);
        drop(receivers);
        (feeder, sink, coord_handles)
    }

    /// Opens a submittable execution session over this runtime's plan:
    /// the stage pipeline is spawned once and stays warm while `f`
    /// pushes any number of [`ExecutionSession::submit`] batches
    /// through it — the serving-layer alternative to the one-shot
    /// [`run`](Self::run), which needs the whole stream up front.
    ///
    /// When `f` returns, the pipeline drains (every submitted task has
    /// already been handed back by `submit`, so nothing is in flight)
    /// and the session's [`RunReport`] carries the per-task timings and
    /// per-stage accounting. `RunReport::outputs` is empty for session
    /// reports: outputs were returned batch-by-batch to the caller.
    ///
    /// Sessions run without a recovery policy — a failed device
    /// surfaces as an error from `submit` (failure injection via
    /// [`RuntimeBuilder::failure_schedule`](crate::RuntimeBuilder::failure_schedule)
    /// is honoured); degraded re-planning across submissions is the
    /// serving layer's job, which can drain one session and open the
    /// next under a new plan.
    ///
    /// # Errors
    ///
    /// Propagates the first [`RuntimeError`] returned by `f`, or a
    /// [`RuntimeError::ChannelClosed`] if a stage coordinator
    /// panicked.
    pub fn session<R>(
        &self,
        f: impl FnOnce(&mut ExecutionSession) -> Result<R, RuntimeError>,
    ) -> Result<(R, RunReport), RuntimeError> {
        let start = pico_telemetry::clock::wall_now();
        let specs = self.worker_specs(self.plan);
        let comm = self.stage_comm(self.plan, &specs);
        std::thread::scope(|scope| {
            let (feeder, sink, coord_handles) =
                self.spawn_stages(scope, &specs, &comm, start, None, &[]);
            let mut session = ExecutionSession {
                feeder,
                sink,
                expect_shape: self.model.input_shape(),
                stage_count: self.plan.stages.len(),
                next_task: 0,
                timings: Vec::new(),
                rec: self.recorder.clone(),
                enabled: self.recorder.is_enabled(),
                start,
            };
            let result = f(&mut session);
            let ExecutionSession {
                feeder,
                sink,
                timings,
                ..
            } = session;
            // Closing both endpoints starts the channel-close cascade;
            // coordinators exit as their inputs drain.
            drop(feeder);
            drop(sink);
            let mut stage_stats = Vec::with_capacity(coord_handles.len());
            let mut failures = Vec::new();
            for (s, h) in coord_handles.into_iter().enumerate() {
                match h.join() {
                    Ok(outcome) => {
                        stage_stats.push(outcome.stat);
                        failures.extend(outcome.failures);
                    }
                    Err(_) => return Err(RuntimeError::ChannelClosed { stage: s }),
                }
            }
            let value = result?;
            Ok((
                value,
                RunReport {
                    outputs: Vec::new(),
                    timings,
                    stage_stats,
                    elapsed: start.elapsed(),
                    failures,
                    degraded_plan: None,
                },
            ))
        })
    }
}

/// A live pipeline accepting task batches, handed to the closure of
/// [`PipelineRuntime::session`]. Stage threads stay warm between
/// submissions, so a serving layer can trickle micro-batches through
/// without paying a pipeline spawn per batch.
pub struct ExecutionSession {
    feeder: Sender<StageMsg>,
    sink: Receiver<StageMsg>,
    expect_shape: pico_model::Shape,
    stage_count: usize,
    next_task: usize,
    timings: Vec<TaskTiming>,
    rec: Recorder,
    enabled: bool,
    start: Instant,
}

impl ExecutionSession {
    /// Pushes one batch through the pipeline and waits for all of its
    /// outputs (in submission order). Feeding and collecting are
    /// interleaved — once the stage-0 queue pushes back, an output is
    /// drained before the next tile is offered — so a batch larger than
    /// the bounded queues cannot deadlock the session.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BadInput`] if a tensor does not match
    /// the model's input shape (the batch is rejected before anything
    /// is fed), or the first error the pipeline surfaces (failed
    /// device, halo/shape mismatch, closed channel). After an error the
    /// session is poisoned: completed outputs of the failed batch are
    /// discarded and further submissions will keep erroring.
    pub fn submit(&mut self, inputs: &[Tensor]) -> Result<Vec<Tensor>, RuntimeError> {
        for (i, input) in inputs.iter().enumerate() {
            if input.shape() != self.expect_shape {
                return Err(RuntimeError::BadInput {
                    task: self.next_task + i,
                    detail: format!("expected {}, got {}", self.expect_shape, input.shape()),
                });
            }
        }
        let base = self.next_task;
        self.next_task += inputs.len();
        let mut outputs = Vec::with_capacity(inputs.len());
        let mut pending: Option<StageMsg> = None;
        let mut sent = 0usize;
        while outputs.len() < inputs.len() {
            while sent < inputs.len() {
                let msg = pending
                    .take()
                    .unwrap_or_else(|| Ok((base + sent, inputs[sent].clone())));
                match self.feeder.try_send(msg) {
                    Ok(()) => sent += 1,
                    Err(TrySendError::Full(msg)) => {
                        pending = Some(msg);
                        break;
                    }
                    Err(TrySendError::Disconnected(_)) => {
                        return Err(RuntimeError::ChannelClosed { stage: 0 });
                    }
                }
            }
            match self.sink.recv() {
                Ok(Ok((task, out))) => {
                    debug_assert_eq!(task, base + outputs.len());
                    let completed_at = self.start.elapsed().as_secs_f64();
                    if self.enabled {
                        self.rec.count_at(
                            names::TASKS_COMPLETED,
                            Ctx::default(),
                            completed_at,
                            1.0,
                        );
                    }
                    self.timings.push(TaskTiming { task, completed_at });
                    outputs.push(out);
                }
                Ok(Err(e)) => return Err(e),
                Err(_) => {
                    return Err(RuntimeError::ChannelClosed {
                        stage: self.stage_count,
                    });
                }
            }
        }
        Ok(outputs)
    }

    /// Tasks submitted so far (the next task index).
    pub fn submitted(&self) -> usize {
        self.next_task
    }

    /// Tasks whose outputs have been handed back so far.
    pub fn completed(&self) -> usize {
        self.timings.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pico_model::zoo;
    use pico_partition::{
        Cluster, CostParams, EarlyFused, LayerWise, OptimalFused, PicoPlanner, PlanRequest, Planner,
    };

    fn setup() -> (Model, Cluster, CostParams) {
        (
            zoo::mnist_toy(),
            Cluster::pi_cluster(4, 1.0),
            CostParams::wifi_50mbps(),
        )
    }

    fn outputs_match_reference(plan: &Plan, model: &Model, tasks: usize) {
        let engine = Engine::with_seed(model, 9);
        let runtime = PipelineRuntime::new(model, plan, &engine);
        let inputs: Vec<Tensor> = (0..tasks)
            .map(|i| Tensor::random(model.input_shape(), 100 + i as u64))
            .collect();
        let report = runtime.run(inputs.clone()).unwrap();
        assert_eq!(report.outputs.len(), tasks);
        for (i, input) in inputs.iter().enumerate() {
            let reference = engine.infer(input).unwrap();
            assert_eq!(report.outputs[i], reference, "task {i} diverged");
        }
        // Completions are ordered.
        assert!(report
            .timings
            .windows(2)
            .all(|w| w[0].completed_at <= w[1].completed_at));
    }

    #[test]
    fn pico_pipeline_outputs_match_single_device() {
        let (m, c, p) = setup();
        let plan = PicoPlanner.plan(&PlanRequest::new(&m, &c, &p)).unwrap();
        outputs_match_reference(&plan, &m, 4);
    }

    #[test]
    fn every_scheme_executes_correctly() {
        let (m, c, p) = setup();
        for plan in [
            LayerWise.plan(&PlanRequest::new(&m, &c, &p)).unwrap(),
            EarlyFused::new()
                .plan(&PlanRequest::new(&m, &c, &p))
                .unwrap(),
            OptimalFused.plan(&PlanRequest::new(&m, &c, &p)).unwrap(),
        ] {
            outputs_match_reference(&plan, &m, 2);
        }
    }

    #[test]
    fn heterogeneous_plan_executes_correctly() {
        let m = zoo::mnist_toy();
        let c = Cluster::paper_heterogeneous_6();
        let p = CostParams::wifi_50mbps();
        let plan = PicoPlanner.plan(&PlanRequest::new(&m, &c, &p)).unwrap();
        outputs_match_reference(&plan, &m, 3);
    }

    #[test]
    fn graph_model_executes_correctly() {
        // Residual blocks through the real pipeline.
        let m = pico_model::Model::new(
            "graphlet",
            pico_model::Shape::new(4, 24, 24),
            vec![
                pico_model::Layer::conv("stem", pico_model::ConvSpec::square(4, 8, 3, 1, 1)).into(),
                pico_model::Unit::Block(pico_model::Block::residual(
                    "res",
                    vec![
                        pico_model::Layer::conv("a", pico_model::ConvSpec::square(8, 8, 3, 1, 1)),
                        pico_model::Layer::conv("b", pico_model::ConvSpec::square(8, 8, 3, 1, 1)),
                    ],
                    vec![],
                )),
            ],
        )
        .unwrap();
        let c = Cluster::pi_cluster(4, 1.0);
        let p = CostParams::wifi_50mbps();
        let plan = PicoPlanner.plan(&PlanRequest::new(&m, &c, &p)).unwrap();
        outputs_match_reference(&plan, &m, 2);
    }

    #[test]
    fn failed_device_surfaces_error() {
        let (m, c, p) = setup();
        let plan = PicoPlanner.plan(&PlanRequest::new(&m, &c, &p)).unwrap();
        let victim = plan.stages[0].assignments[0].device;
        let engine = Engine::with_seed(&m, 1);
        let runtime = PipelineRuntime::builder(&m, &plan, &engine)
            .failed_device(victim)
            .build();
        let err = runtime
            .run(vec![Tensor::random(m.input_shape(), 1)])
            .unwrap_err();
        assert!(
            matches!(err, RuntimeError::DeviceFailed { device, .. } if device == victim),
            "got {err}"
        );
    }

    /// A two-device single-stage plan with a deterministic shard layout
    /// for fault tests: device 0 takes the top half, device 1 the rest.
    fn two_worker_single_stage(m: &Model) -> Plan {
        let h = m.output_shape().height;
        Plan::new(
            pico_partition::Scheme::Pico,
            pico_partition::ExecutionMode::Pipelined,
            vec![pico_partition::Stage::new(
                Segment::new(0, m.len()),
                vec![
                    pico_partition::Assignment::new(0, Rows::new(0, h / 2)),
                    pico_partition::Assignment::new(1, Rows::new(h / 2, h)),
                ],
            )],
        )
    }

    #[test]
    fn simultaneous_failures_all_reported() {
        // Regression for the old gather loop, which kept only the first
        // error (`failure.or(Some(e))`): two devices failing on the
        // same task must both appear in the surfaced error.
        let m = zoo::mnist_toy();
        let plan = two_worker_single_stage(&m);
        let engine = Engine::with_seed(&m, 1);
        let runtime = PipelineRuntime::builder(&m, &plan, &engine)
            .failed_device(0)
            .failed_device(1)
            .build();
        let err = runtime
            .run(vec![Tensor::random(m.input_shape(), 1)])
            .unwrap_err();
        match err {
            RuntimeError::Multiple { errors } => {
                assert_eq!(errors.len(), 2, "both casualties reported");
                let mut devices: Vec<usize> = errors
                    .iter()
                    .map(|e| match e {
                        RuntimeError::DeviceFailed { device, .. } => *device,
                        other => panic!("expected DeviceFailed, got {other}"),
                    })
                    .collect();
                devices.sort_unstable();
                assert_eq!(devices, vec![0, 1]);
            }
            other => panic!("expected Multiple, got {other}"),
        }
    }

    #[test]
    fn retry_on_survivor_keeps_outputs_bit_exact() {
        // Device 1 dies from task 1 on; its shard is rerouted to device
        // 0, and every output stays bit-identical to the single-device
        // reference.
        let m = zoo::mnist_toy();
        let plan = two_worker_single_stage(&m);
        let engine = Engine::with_seed(&m, 5);
        let rec = Recorder::in_memory();
        let runtime = PipelineRuntime::builder(&m, &plan, &engine)
            .failure_schedule(FailureSchedule::new().fail(1, 1))
            .recovery(RecoveryPolicy::new(
                Cluster::pi_cluster(2, 1.0),
                CostParams::wifi_50mbps(),
            ))
            .recorder(rec.clone())
            .build();
        let inputs: Vec<Tensor> = (0..4).map(|i| Tensor::random(m.input_shape(), i)).collect();
        let report = runtime.run(inputs.clone()).unwrap();
        for (i, input) in inputs.iter().enumerate() {
            assert_eq!(
                report.outputs[i],
                engine.infer(input).unwrap(),
                "task {i} diverged"
            );
        }
        // The stage survivor absorbed the work: no re-plan needed.
        assert!(report.degraded_plan.is_none());
        assert_eq!(report.failures.len(), 1);
        assert_eq!(report.failures[0].device, 1);
        assert_eq!(report.failures[0].task, 1);
        let events = rec.snapshot();
        assert!(events.iter().any(|e| e.name == names::DEVICE_FAILED));
        assert!(events.iter().any(|e| e.name == names::TASK_RETRIED));
        assert!(!events.iter().any(|e| e.name == names::PLAN_DEGRADED));
    }

    #[test]
    fn lost_stage_triggers_degraded_replan() {
        // A 2-stage pipeline, one device per stage: killing stage 0's
        // only device forces a re-plan over the surviving cluster.
        let m = zoo::mnist_toy();
        let h = m.output_shape().height;
        let mid = m.len() / 2;
        let plan = Plan::new(
            pico_partition::Scheme::Pico,
            pico_partition::ExecutionMode::Pipelined,
            vec![
                pico_partition::Stage::new(
                    Segment::new(0, mid),
                    vec![pico_partition::Assignment::new(
                        0,
                        Rows::full(m.unit_output_shape(mid - 1).height),
                    )],
                ),
                pico_partition::Stage::new(
                    Segment::new(mid, m.len()),
                    vec![pico_partition::Assignment::new(1, Rows::full(h))],
                ),
            ],
        );
        let engine = Engine::with_seed(&m, 6);
        let rec = Recorder::in_memory();
        let runtime = PipelineRuntime::builder(&m, &plan, &engine)
            .failure_schedule(FailureSchedule::new().fail(0, 2))
            .recovery(RecoveryPolicy::new(
                Cluster::pi_cluster(2, 1.0),
                CostParams::wifi_50mbps(),
            ))
            .recorder(rec.clone())
            .build();
        let inputs: Vec<Tensor> = (0..5).map(|i| Tensor::random(m.input_shape(), i)).collect();
        let report = runtime.run(inputs.clone()).unwrap();
        for (i, input) in inputs.iter().enumerate() {
            assert_eq!(
                report.outputs[i],
                engine.infer(input).unwrap(),
                "task {i} diverged"
            );
        }
        let degraded = report.degraded_plan.as_ref().expect("re-planned");
        for stage in &degraded.stages {
            for a in &stage.assignments {
                assert_ne!(a.device, 0, "dead device still assigned");
            }
        }
        assert!(report.failures.iter().any(|f| f.device == 0));
        assert!(rec
            .snapshot()
            .iter()
            .any(|e| e.name == names::PLAN_DEGRADED));
    }

    #[test]
    fn exhausted_cluster_is_a_typed_recovery_error() {
        // Both devices of a single-stage plan die: nothing survives, so
        // the re-plan fails with the plan error chained.
        let m = zoo::mnist_toy();
        let plan = two_worker_single_stage(&m);
        let engine = Engine::with_seed(&m, 2);
        let runtime = PipelineRuntime::builder(&m, &plan, &engine)
            .failure_schedule(FailureSchedule::new().fail(0, 0).fail(1, 0))
            .recovery(RecoveryPolicy::new(
                Cluster::pi_cluster(2, 1.0),
                CostParams::wifi_50mbps(),
            ))
            .build();
        let err = runtime
            .run(vec![Tensor::random(m.input_shape(), 3)])
            .unwrap_err();
        match err {
            RuntimeError::RecoveryFailed { excluded, source } => {
                assert_eq!(excluded, vec![0, 1]);
                assert!(matches!(
                    source,
                    pico_partition::PlanError::ClusterExhausted { .. }
                ));
            }
            other => panic!("expected RecoveryFailed, got {other}"),
        }
    }

    #[test]
    fn stalled_worker_detected_by_timeout() {
        // Device 1 goes silent (stalls well past the timeout) instead
        // of erroring fast: the coordinator classifies it dead via
        // recv_timeout and reroutes, keeping outputs exact. A tiny
        // model keeps healthy compute far below the timeout even in
        // unoptimized builds.
        let m = pico_model::Model::new(
            "tiny",
            pico_model::Shape::new(2, 8, 8),
            vec![pico_model::Layer::conv("a", pico_model::ConvSpec::square(2, 2, 3, 1, 1)).into()],
        )
        .unwrap();
        let plan = two_worker_single_stage(&m);
        let engine = Engine::with_seed(&m, 8);
        let runtime = PipelineRuntime::builder(&m, &plan, &engine)
            .failure_schedule(FailureSchedule::new().fail_with_stall(
                1,
                0,
                Duration::from_millis(1200),
            ))
            .recovery(
                RecoveryPolicy::new(Cluster::pi_cluster(2, 1.0), CostParams::wifi_50mbps())
                    // Generous relative to healthy compute (microseconds
                    // to low milliseconds even under parallel test load)
                    // but well under the stall.
                    .with_task_timeout(Duration::from_millis(400)),
            )
            .build();
        let inputs: Vec<Tensor> = (0..2).map(|i| Tensor::random(m.input_shape(), i)).collect();
        let report = runtime.run(inputs.clone()).unwrap();
        for (i, input) in inputs.iter().enumerate() {
            assert_eq!(report.outputs[i], engine.infer(input).unwrap());
        }
        assert_eq!(report.failures.len(), 1);
        assert!(
            report.failures[0].cause.contains("no response"),
            "cause: {}",
            report.failures[0].cause
        );
    }

    #[test]
    fn backend_override_runs_simd_bit_exactly() {
        // A whole-run Simd override (with an intra-shard thread pool)
        // must reproduce the f32 reference outputs exactly.
        use pico_tensor::EngineBackend;
        let (m, c, p) = setup();
        let plan = PicoPlanner.plan(&PlanRequest::new(&m, &c, &p)).unwrap();
        let engine = Engine::with_seed(&m, 3).with_threads(2);
        let runtime = PipelineRuntime::builder(&m, &plan, &engine)
            .backend(EngineBackend::Simd)
            .build();
        let inputs: Vec<Tensor> = (0..3).map(|i| Tensor::random(m.input_shape(), i)).collect();
        let report = runtime.run(inputs.clone()).unwrap();
        let oracle = engine.fork_backend(EngineBackend::Reference);
        for (i, input) in inputs.iter().enumerate() {
            assert_eq!(report.outputs[i], oracle.infer(input).unwrap());
        }
    }

    #[test]
    fn mixed_device_backends_stitch_consistently() {
        // One device per stage runs int8, the rest f32. Stages chain
        // sequentially here, so the int8 stages inject bounded error;
        // the run must still complete and track the f32 pipeline
        // within the quantization budget.
        use pico_tensor::EngineBackend;
        let (m, c, p) = setup();
        let plan = PicoPlanner.plan(&PlanRequest::new(&m, &c, &p)).unwrap();
        let engine = Engine::with_seed(&m, 3);
        let some_device = plan.stages[0].assignments[0].device;
        let runtime = PipelineRuntime::builder(&m, &plan, &engine)
            .device_backend(some_device, EngineBackend::Int8)
            .build();
        let inputs: Vec<Tensor> = (0..2).map(|i| Tensor::random(m.input_shape(), i)).collect();
        let report = runtime.run(inputs.clone()).unwrap();
        for (i, input) in inputs.iter().enumerate() {
            let exact = engine.infer(input).unwrap();
            let got = &report.outputs[i];
            assert_eq!(got.shape(), exact.shape());
            let scale = exact.data().iter().fold(0.0f32, |a, &v| a.max(v.abs()));
            let worst = exact
                .data()
                .iter()
                .zip(got.data())
                .map(|(e, g)| (e - g).abs())
                .fold(0.0f32, f32::max);
            assert!(
                worst <= 0.05 * scale.max(1.0),
                "task {i}: worst={worst} scale={scale}"
            );
        }
    }

    #[test]
    fn bad_input_rejected_before_spawning() {
        let (m, c, p) = setup();
        let plan = PicoPlanner.plan(&PlanRequest::new(&m, &c, &p)).unwrap();
        let engine = Engine::with_seed(&m, 1);
        let runtime = PipelineRuntime::new(&m, &plan, &engine);
        let bad = Tensor::random(pico_model::Shape::new(3, 8, 8), 0);
        assert!(matches!(
            runtime.run(vec![bad]),
            Err(RuntimeError::BadInput { task: 0, .. })
        ));
    }

    #[test]
    fn empty_input_list_is_fine() {
        let (m, c, p) = setup();
        let plan = PicoPlanner.plan(&PlanRequest::new(&m, &c, &p)).unwrap();
        let engine = Engine::with_seed(&m, 1);
        let report = PipelineRuntime::new(&m, &plan, &engine)
            .run(vec![])
            .unwrap();
        assert!(report.outputs.is_empty());
        assert!(report.failures.is_empty());
        assert!(report.degraded_plan.is_none());
        assert_eq!(report.throughput().unwrap_or(0.0), 0.0);
        assert_eq!(report.measured_period(), None);
    }

    #[test]
    #[should_panic(expected = "cover the whole model")]
    fn truncated_plan_panics() {
        let (m, c, p) = setup();
        let mut plan = PicoPlanner.plan(&PlanRequest::new(&m, &c, &p)).unwrap();
        plan.stages.pop();
        if plan.stages.is_empty() {
            panic!("plan must cover the whole model"); // degenerate case
        }
        let engine = Engine::with_seed(&m, 1);
        let _ = PipelineRuntime::new(&m, &plan, &engine);
    }

    #[test]
    fn throttled_pipeline_still_correct_and_ordered() {
        let (m, c, p) = setup();
        let plan = PicoPlanner.plan(&PlanRequest::new(&m, &c, &p)).unwrap();
        let engine = Engine::with_seed(&m, 2);
        // A very small scale keeps the test fast while exercising the
        // sleep path.
        let throttle = Throttle::new(c.clone(), p, 1e-7);
        let runtime = PipelineRuntime::builder(&m, &plan, &engine)
            .throttle(throttle)
            .build();
        let inputs: Vec<Tensor> = (0..3).map(|i| Tensor::random(m.input_shape(), i)).collect();
        let report = runtime.run(inputs.clone()).unwrap();
        for (i, input) in inputs.iter().enumerate() {
            assert_eq!(report.outputs[i], engine.infer(input).unwrap());
        }
    }

    #[test]
    fn throughput_is_none_when_wall_duration_is_zero() {
        // Regression: a completed-but-instant report used to claim a
        // throughput of 0.0 tasks/s — a lie that call sites divided by.
        let report = RunReport {
            outputs: Vec::new(),
            timings: vec![TaskTiming {
                task: 0,
                completed_at: 0.0,
            }],
            stage_stats: Vec::new(),
            elapsed: Duration::ZERO,
            failures: Vec::new(),
            degraded_plan: None,
        };
        assert_eq!(report.throughput(), None);
        let nonzero = RunReport {
            elapsed: Duration::from_millis(500),
            ..report
        };
        assert_eq!(nonzero.throughput(), Some(2.0));
    }

    #[test]
    fn session_batches_are_bit_exact_and_accounted() {
        let (m, c, p) = setup();
        let plan = PicoPlanner.plan(&PlanRequest::new(&m, &c, &p)).unwrap();
        let engine = Engine::with_seed(&m, 11);
        let runtime = PipelineRuntime::new(&m, &plan, &engine);
        let inputs: Vec<Tensor> = (0..5)
            .map(|i| Tensor::random(m.input_shape(), 300 + i as u64))
            .collect();
        let (outputs, report) = runtime
            .session(|sess| {
                let mut all = sess.submit(&inputs[..2])?;
                assert_eq!(sess.submitted(), 2);
                assert_eq!(sess.completed(), 2);
                all.extend(sess.submit(&inputs[2..4])?);
                all.extend(sess.submit(&[])?);
                all.extend(sess.submit(&inputs[4..])?);
                Ok(all)
            })
            .unwrap();
        assert_eq!(outputs.len(), inputs.len());
        for (input, out) in inputs.iter().zip(&outputs) {
            assert_eq!(out, &engine.infer(input).unwrap());
        }
        // The session report accounts every task, with outputs already
        // handed out batch-by-batch.
        assert!(report.outputs.is_empty());
        assert_eq!(report.timings.len(), inputs.len());
        for st in &report.stage_stats {
            assert_eq!(st.tasks, inputs.len(), "stage {}", st.stage);
        }
    }

    #[test]
    fn session_batch_larger_than_queue_capacity_drains() {
        // submit() interleaves feeding and collecting, so a batch much
        // deeper than the bounded inter-stage queues must not deadlock.
        let (m, c, p) = setup();
        let plan = PicoPlanner.plan(&PlanRequest::new(&m, &c, &p)).unwrap();
        let engine = Engine::with_seed(&m, 13);
        let runtime = PipelineRuntime::builder(&m, &plan, &engine)
            .channel_capacity(1)
            .build();
        let inputs: Vec<Tensor> = (0..6)
            .map(|i| Tensor::random(m.input_shape(), 700 + i as u64))
            .collect();
        let (outputs, _report) = runtime.session(|sess| sess.submit(&inputs)).unwrap();
        for (input, out) in inputs.iter().zip(&outputs) {
            assert_eq!(out, &engine.infer(input).unwrap());
        }
    }

    #[test]
    fn session_surfaces_injected_failure_from_submit() {
        let (m, c, p) = setup();
        let plan = PicoPlanner.plan(&PlanRequest::new(&m, &c, &p)).unwrap();
        let victim = plan.stages[0].assignments[0].device;
        let engine = Engine::with_seed(&m, 1);
        let runtime = PipelineRuntime::builder(&m, &plan, &engine)
            .failed_device(victim)
            .build();
        let err = runtime
            .session(|sess| sess.submit(&[Tensor::random(m.input_shape(), 1)]))
            .unwrap_err();
        assert!(
            matches!(err, RuntimeError::DeviceFailed { device, .. } if device == victim),
            "got {err}"
        );
    }

    #[test]
    fn bounded_queues_still_drain_the_pipeline() {
        let (m, c, p) = setup();
        let plan = PicoPlanner.plan(&PlanRequest::new(&m, &c, &p)).unwrap();
        let engine = Engine::with_seed(&m, 7);
        let runtime = PipelineRuntime::builder(&m, &plan, &engine)
            .channel_capacity(1)
            .build();
        let inputs: Vec<Tensor> = (0..5).map(|i| Tensor::random(m.input_shape(), i)).collect();
        let report = runtime.run(inputs.clone()).unwrap();
        for (i, input) in inputs.iter().enumerate() {
            assert_eq!(report.outputs[i], engine.infer(input).unwrap());
        }
    }

    #[test]
    fn pipeline_overlaps_stage_sleeps() {
        // Stage overlap is observable even on a single-core host: with
        // a throttle whose sleeps dominate compute, N tasks through a
        // 2-stage pipeline take ~(N+1) * stage_time, not the sequential
        // 2N * stage_time.
        let m = pico_model::Model::new(
            "small",
            pico_model::Shape::new(4, 12, 12),
            vec![
                pico_model::Layer::conv("a", pico_model::ConvSpec::square(4, 4, 3, 1, 1)).into(),
                pico_model::Layer::conv("b", pico_model::ConvSpec::square(4, 4, 3, 1, 1)).into(),
            ],
        )
        .unwrap();
        let c = Cluster::pi_cluster(2, 1.0);
        // Effectively free network: the throttle should sleep for
        // compute only, and both stages sleep equally long.
        let p = CostParams::new(1e15);
        let h = m.output_shape().height;
        // Hand-built 2-stage pipeline, one device each.
        let plan = Plan::new(
            pico_partition::Scheme::Pico,
            pico_partition::ExecutionMode::Pipelined,
            vec![
                pico_partition::Stage::new(
                    Segment::new(0, 1),
                    vec![pico_partition::Assignment::new(0, Rows::full(h))],
                ),
                pico_partition::Stage::new(
                    Segment::new(1, 2),
                    vec![pico_partition::Assignment::new(1, Rows::full(h))],
                ),
            ],
        );
        let engine = Engine::with_seed(&m, 2);
        // Scale so each stage sleeps ~40 ms (compute is microseconds).
        let stage_flops = m.segment_flops(Segment::new(0, 1), Rows::full(h));
        let device_time = c.device(0).unwrap().compute_time(stage_flops);
        let scale = 0.04 / device_time;
        let throttle = Throttle::new(c.clone(), p, scale);
        let runtime = PipelineRuntime::builder(&m, &plan, &engine)
            .throttle(throttle)
            .build();
        let n = 6;
        let inputs: Vec<Tensor> = (0..n).map(|i| Tensor::random(m.input_shape(), i)).collect();
        let report = runtime.run(inputs).unwrap();
        let elapsed = report.elapsed.as_secs_f64();
        // Sequential floor would be ~2 * n * 0.04 = 0.48 s; pipelined is
        // ~(n + 1) * 0.04 = 0.28 s. Assert we beat the sequential floor
        // with margin for scheduling noise under parallel test load.
        assert!(
            elapsed < 0.44,
            "elapsed {elapsed}s suggests no stage overlap"
        );
        assert!(elapsed > 0.20, "elapsed {elapsed}s is impossibly fast");
    }
}

#[cfg(test)]
mod stage_stat_tests {
    use super::*;
    use pico_model::zoo;
    use pico_partition::{Cluster, CostParams, PicoPlanner, PlanRequest, Planner};
    use pico_telemetry::TraceSummary;

    #[test]
    fn stage_stats_count_every_task() {
        let m = zoo::mnist_toy();
        let c = Cluster::pi_cluster(4, 1.0);
        let plan = PicoPlanner
            .plan(&PlanRequest::new(&m, &c, &CostParams::wifi_50mbps()))
            .unwrap();
        let engine = Engine::with_seed(&m, 3);
        let n: usize = 5;
        let inputs: Vec<Tensor> = (0..n)
            .map(|i| Tensor::random(m.input_shape(), i as u64))
            .collect();
        let report = PipelineRuntime::new(&m, &plan, &engine)
            .run(inputs)
            .unwrap();
        assert_eq!(report.stage_stats.len(), plan.stage_count());
        for st in &report.stage_stats {
            assert_eq!(st.tasks, n, "stage {}", st.stage);
            assert!(st.busy_secs > 0.0);
        }
        assert!(report.bottleneck_stage().is_some());
        assert!(report.throughput().unwrap() > 0.0);
        assert!(report.measured_period().unwrap() > 0.0);
    }

    #[test]
    fn recorded_spans_reconcile_exactly_with_stage_stats() {
        // The contract behind "stage_stats is a derived view": each
        // stage's busy_secs equals the sum of its stage_busy span
        // durations — exactly, not approximately, because both come
        // from the same timestamp pairs in the same order.
        let m = zoo::mnist_toy();
        let c = Cluster::pi_cluster(4, 1.0);
        let plan = PicoPlanner
            .plan(&PlanRequest::new(&m, &c, &CostParams::wifi_50mbps()))
            .unwrap();
        let engine = Engine::with_seed(&m, 4);
        let rec = Recorder::in_memory();
        let runtime = PipelineRuntime::builder(&m, &plan, &engine)
            .recorder(rec.clone())
            .build();
        let inputs: Vec<Tensor> = (0..4).map(|i| Tensor::random(m.input_shape(), i)).collect();
        let report = runtime.run(inputs).unwrap();

        let summary = TraceSummary::from_events(&rec.snapshot());
        let derived = summary.stage_busy();
        assert_eq!(derived.len(), report.stage_stats.len());
        for (stat, (stage, busy)) in report.stage_stats.iter().zip(derived) {
            assert_eq!(stat.stage as u32, stage);
            assert_eq!(stat.busy_secs, busy, "stage {stage} diverged");
        }
        assert_eq!(summary.tasks_completed, 4.0);
        // Worker compute spans carry flops/bytes payloads.
        assert!(summary.stages.iter().any(|s| s.flops > 0.0));
    }

    #[test]
    fn spans_reconcile_across_a_degraded_replan() {
        // The reconciliation law survives a mid-stream re-plan: stats
        // are seeded across attempts, so the per-stage busy sums still
        // equal the trace's span sums bit-for-bit.
        let m = zoo::mnist_toy();
        let h = m.output_shape().height;
        let mid = m.len() / 2;
        let plan = Plan::new(
            pico_partition::Scheme::Pico,
            pico_partition::ExecutionMode::Pipelined,
            vec![
                pico_partition::Stage::new(
                    Segment::new(0, mid),
                    vec![pico_partition::Assignment::new(
                        0,
                        Rows::full(m.unit_output_shape(mid - 1).height),
                    )],
                ),
                pico_partition::Stage::new(
                    Segment::new(mid, m.len()),
                    vec![pico_partition::Assignment::new(1, Rows::full(h))],
                ),
            ],
        );
        let engine = Engine::with_seed(&m, 11);
        let rec = Recorder::in_memory();
        let runtime = PipelineRuntime::builder(&m, &plan, &engine)
            .failure_schedule(crate::FailureSchedule::new().fail(0, 2))
            .recovery(crate::RecoveryPolicy::new(
                Cluster::pi_cluster(2, 1.0),
                CostParams::wifi_50mbps(),
            ))
            .recorder(rec.clone())
            .build();
        let inputs: Vec<Tensor> = (0..5).map(|i| Tensor::random(m.input_shape(), i)).collect();
        let report = runtime.run(inputs).unwrap();
        assert!(report.degraded_plan.is_some());
        let summary = TraceSummary::from_events(&rec.snapshot());
        for (stat, (stage, busy)) in report.stage_stats.iter().zip(summary.stage_busy()) {
            assert_eq!(stat.stage as u32, stage);
            assert_eq!(stat.busy_secs, busy, "stage {stage} diverged");
        }
        assert_eq!(summary.tasks_completed, 5.0);
    }

    #[test]
    fn throttled_bottleneck_matches_cost_model() {
        // With a dominant throttle, the measured bottleneck stage is the
        // cost model's max-cost stage.
        let m = zoo::mnist_toy();
        let c = Cluster::pi_cluster(4, 1.0);
        let params = CostParams::wifi_50mbps();
        let plan = PicoPlanner
            .plan(&PlanRequest::new(&m, &c, &params))
            .unwrap();
        if plan.stage_count() < 2 {
            return;
        }
        let cm = params.cost_model(&m);
        let metrics = cm.evaluate(&plan, &c);
        let analytic_bottleneck = metrics
            .stage_costs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total().partial_cmp(&b.1.total()).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        let engine = Engine::with_seed(&m, 3);
        // Scale chosen so sleeps (~tens of ms) dominate real compute.
        let throttle = Throttle::new(c.clone(), params, 1.0);
        let inputs: Vec<Tensor> = (0..4).map(|i| Tensor::random(m.input_shape(), i)).collect();
        let report = PipelineRuntime::builder(&m, &plan, &engine)
            .throttle(throttle)
            .build()
            .run(inputs)
            .unwrap();
        assert_eq!(report.bottleneck_stage(), Some(analytic_bottleneck));
    }
}
