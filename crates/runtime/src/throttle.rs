use std::time::Duration;

use pico_partition::{Cluster, CostParams};

/// Optional per-device compute throttling.
///
/// The laptop running the tests computes every tile at the same real
/// speed; a throttle stretches each device's compute step to
/// `cost_model_seconds * scale` of wall-clock time, so heterogeneous
/// capacities and pipeline overlap become observable without Raspberry
/// Pi hardware. `scale` is typically `1e-3`–`1e-2` to keep runs fast.
#[derive(Debug, Clone)]
pub struct Throttle {
    cluster: Cluster,
    params: CostParams,
    scale: f64,
}

impl Throttle {
    /// Creates a throttle that stretches compute to cost-model
    /// proportions scaled by `scale`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not strictly positive and finite.
    pub fn new(cluster: Cluster, params: CostParams, scale: f64) -> Self {
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        Throttle {
            cluster,
            params,
            scale,
        }
    }

    /// The environment parameters the throttle prices with.
    pub fn params(&self) -> CostParams {
        self.params
    }

    /// Minimum wall-clock duration device `device` should spend on
    /// `flops` floating-point operations.
    pub fn compute_duration(&self, device: usize, flops: f64) -> Duration {
        match self.cluster.device(device) {
            Some(d) => Duration::from_secs_f64(
                d.compute_time(flops) * self.params.alpha_scale * self.scale,
            ),
            None => Duration::ZERO,
        }
    }

    /// Minimum wall-clock duration shipping `bytes` over the emulated
    /// shared link should take.
    pub fn transfer_duration(&self, bytes: usize) -> Duration {
        Duration::from_secs_f64(bytes as f64 * 8.0 / self.params.bandwidth_bps * self.scale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slower_devices_get_longer_durations() {
        let cluster = Cluster::paper_heterogeneous();
        let t = Throttle::new(cluster, CostParams::wifi_50mbps(), 1e-3);
        let fast = t.compute_duration(0, 1e9); // 1.2 GHz
        let slow = t.compute_duration(7, 1e9); // 600 MHz
        assert!(slow > fast);
        assert_eq!(t.compute_duration(99, 1e9), Duration::ZERO);
    }

    #[test]
    fn transfer_scales_with_bytes() {
        let t = Throttle::new(Cluster::pi_cluster(1, 1.0), CostParams::new(8e6), 1.0);
        // 1 MB at 1 MB/s = 1 s.
        assert!((t.transfer_duration(1_000_000).as_secs_f64() - 1.0).abs() < 1e-9);
    }
}
