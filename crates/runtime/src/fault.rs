//! Failure injection, failure records, and the recovery policy.
//!
//! Three pieces cooperate to make degraded-mode execution testable:
//!
//! * [`FailureSchedule`] — a deterministic script of injected failures
//!   (device × first-failing-task, optionally with a stall), so chaos
//!   tests reproduce byte-for-byte across runs;
//! * [`FailureRecord`] — what the runtime observed: which device died,
//!   at which stage and task, and why (populated into
//!   [`RunReport::failures`](crate::RunReport::failures));
//! * [`RecoveryPolicy`] — what the runtime may do about it: retry a
//!   dead worker's shard on a surviving device of the same stage with
//!   capped exponential backoff, and when a stage loses every worker,
//!   re-plan over the surviving cluster and resume the stream.

use std::time::Duration;

use pico_partition::{Cluster, CostParams, PicoPlanner, Planner};

/// One scripted failure: `device` errors on every task whose index is
/// `>= from_task`. With a [`stall`](InjectedFailure::stall) the worker
/// first goes silent for that long — exercising timeout-based detection
/// instead of the explicit error signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFailure {
    /// The device that fails.
    pub device: usize,
    /// First task index (submission order) the failure applies to.
    pub from_task: usize,
    /// Sleep this long before signalling the error (simulates a hung
    /// device; pair with [`RecoveryPolicy::with_task_timeout`]).
    pub stall: Option<Duration>,
}

/// A deterministic script of injected failures for chaos experiments.
///
/// Schedules are plain data: the same schedule against the same plan
/// and seed reproduces the same failure sequence, which is what lets
/// the chaos harness assert bit-exact outputs under faults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailureSchedule {
    failures: Vec<InjectedFailure>,
}

impl FailureSchedule {
    /// An empty schedule (no injected failures).
    pub fn new() -> Self {
        FailureSchedule::default()
    }

    /// Adds a failure: `device` errors on every task `>= from_task`.
    pub fn fail(mut self, device: usize, from_task: usize) -> Self {
        self.failures.push(InjectedFailure {
            device,
            from_task,
            stall: None,
        });
        self
    }

    /// Adds a stalling failure: `device` goes silent for `stall`
    /// before erroring, on every task `>= from_task`.
    pub fn fail_with_stall(mut self, device: usize, from_task: usize, stall: Duration) -> Self {
        self.failures.push(InjectedFailure {
            device,
            from_task,
            stall: Some(stall),
        });
        self
    }

    /// Builds a schedule from `(device, from_task)` pairs — the shape a
    /// churn epoch's [`ChurnEpoch::leaves`](pico_partition::ChurnEpoch)
    /// carries, with `from_task` already rebased to the epoch's own task
    /// numbering so a rejoined device starts the next epoch as a fresh
    /// worker with no stale failure entry.
    pub fn from_leaves(leaves: &[(usize, usize)]) -> Self {
        let mut s = FailureSchedule::new();
        for &(device, from_task) in leaves {
            s = s.fail(device, from_task);
        }
        s
    }

    /// Whether the schedule injects nothing.
    pub fn is_empty(&self) -> bool {
        self.failures.is_empty()
    }

    /// The scripted failures, in insertion order.
    pub fn entries(&self) -> &[InjectedFailure] {
        &self.failures
    }

    /// The failure (if any) that applies to `device` working on `task`.
    pub fn injected(&self, device: usize, task: usize) -> Option<&InjectedFailure> {
        self.failures
            .iter()
            .find(|f| f.device == device && task >= f.from_task)
    }
}

/// What the runtime observed about one device failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureRecord {
    /// The device classified as dead.
    pub device: usize,
    /// Stage the device was serving.
    pub stage: usize,
    /// Task index being processed when the failure was detected.
    pub task: usize,
    /// Human-readable cause (the worker's error, or a timeout note).
    pub cause: String,
}

/// Retry/backoff/timeout knobs, copied into each stage coordinator so
/// the serving threads never touch the (non-`Copy`) policy itself.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RetryKnobs {
    pub max_retries: usize,
    pub backoff_base: Duration,
    pub backoff_cap: Duration,
    pub task_timeout: Option<Duration>,
}

impl RetryKnobs {
    /// Backoff before retry round `round` (1-based): `base * 2^(round-1)`
    /// capped at `backoff_cap`.
    pub fn delay_for_round(&self, round: usize) -> Duration {
        let shift = round.saturating_sub(1).min(16) as u32;
        self.backoff_base
            .saturating_mul(1 << shift)
            .min(self.backoff_cap)
    }
}

/// How the runtime responds to device failures.
///
/// With a policy installed (via
/// [`RuntimeBuilder::recovery`](crate::RuntimeBuilder::recovery)), a
/// worker error or response timeout classifies the device as dead
/// instead of failing the run: its shard is retried on a surviving
/// device of the same stage, and when a stage loses every worker the
/// runtime re-plans over the surviving cluster (the policy's planner
/// with the dead devices excluded) and resumes the task stream.
pub struct RecoveryPolicy {
    pub(crate) cluster: Cluster,
    pub(crate) params: CostParams,
    pub(crate) planner: Box<dyn Planner>,
    pub(crate) max_retries: usize,
    pub(crate) backoff_base: Duration,
    pub(crate) backoff_cap: Duration,
    pub(crate) task_timeout: Option<Duration>,
}

impl RecoveryPolicy {
    /// A policy that re-plans with [`PicoPlanner`] over `cluster` /
    /// `params` (pass the same pair the original plan came from), with
    /// defaults tuned for tests: 3 retry rounds, 1 ms base backoff
    /// capped at 50 ms, and no response timeout (failures are detected
    /// from explicit worker errors only).
    pub fn new(cluster: Cluster, params: CostParams) -> Self {
        RecoveryPolicy {
            cluster,
            params,
            planner: Box::new(PicoPlanner),
            max_retries: 3,
            backoff_base: Duration::from_millis(1),
            backoff_cap: Duration::from_millis(50),
            task_timeout: None,
        }
    }

    /// Re-plans with `planner` instead of the default [`PicoPlanner`].
    pub fn with_planner(mut self, planner: impl Planner + 'static) -> Self {
        self.planner = Box::new(planner);
        self
    }

    /// Caps the retry rounds per task (beyond the first attempt).
    pub fn with_max_retries(mut self, rounds: usize) -> Self {
        self.max_retries = rounds;
        self
    }

    /// Sets the exponential backoff between retry rounds: round `r`
    /// sleeps `base * 2^(r-1)`, capped at `cap`.
    pub fn with_backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.backoff_base = base;
        self.backoff_cap = cap;
        self
    }

    /// Classifies a worker as dead when it does not answer within
    /// `timeout` (detects hangs, not just explicit errors). Choose a
    /// timeout above the slowest healthy response — throttled workers
    /// sleep to their cost-model duration and must not be declared
    /// dead for it.
    pub fn with_task_timeout(mut self, timeout: Duration) -> Self {
        self.task_timeout = Some(timeout);
        self
    }

    pub(crate) fn knobs(&self) -> RetryKnobs {
        RetryKnobs {
            max_retries: self.max_retries,
            backoff_base: self.backoff_base,
            backoff_cap: self.backoff_cap,
            task_timeout: self.task_timeout,
        }
    }
}

impl std::fmt::Debug for RecoveryPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecoveryPolicy")
            .field("cluster", &self.cluster.len())
            .field("planner", &self.planner.name())
            .field("max_retries", &self.max_retries)
            .field("backoff_base", &self.backoff_base)
            .field("backoff_cap", &self.backoff_cap)
            .field("task_timeout", &self.task_timeout)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_matches_from_first_failing_task() {
        let s = FailureSchedule::new().fail(2, 3);
        assert!(s.injected(2, 2).is_none());
        assert!(s.injected(2, 3).is_some());
        assert!(s.injected(2, 9).is_some());
        assert!(s.injected(1, 9).is_none());
        assert!(!s.is_empty());
        assert_eq!(s.entries().len(), 1);
    }

    #[test]
    fn stall_rides_along() {
        let s = FailureSchedule::new().fail_with_stall(0, 1, Duration::from_millis(5));
        let f = s.injected(0, 1).unwrap();
        assert_eq!(f.stall, Some(Duration::from_millis(5)));
    }

    #[test]
    fn backoff_grows_and_caps() {
        let k = RetryKnobs {
            max_retries: 5,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(7),
            task_timeout: None,
        };
        assert_eq!(k.delay_for_round(1), Duration::from_millis(2));
        assert_eq!(k.delay_for_round(2), Duration::from_millis(4));
        assert_eq!(k.delay_for_round(3), Duration::from_millis(7));
        assert_eq!(k.delay_for_round(30), Duration::from_millis(7));
    }

    #[test]
    fn policy_debug_names_the_planner() {
        let p = RecoveryPolicy::new(Cluster::pi_cluster(2, 1.0), CostParams::default());
        let dbg = format!("{p:?}");
        assert!(dbg.contains("PICO"), "got {dbg}");
    }
}
