use std::collections::HashSet;

use pico_model::Model;
use pico_partition::Plan;
use pico_telemetry::Recorder;
use pico_tensor::Engine;

use crate::{PipelineRuntime, Throttle};

/// Configures a [`PipelineRuntime`] with named setters instead of the
/// old positional `with_*` chain.
///
/// ```
/// use pico_partition::{CostParams, Cluster, PicoPlanner, Planner};
/// use pico_runtime::PipelineRuntime;
/// use pico_telemetry::Recorder;
/// use pico_tensor::Engine;
///
/// let model = pico_model::zoo::mnist_toy();
/// let cluster = Cluster::pi_cluster(4, 1.0);
/// let plan = PicoPlanner
///     .plan_simple(&model, &cluster, &CostParams::wifi_50mbps())
///     .unwrap();
/// let engine = Engine::with_seed(&model, 7);
/// let runtime = PipelineRuntime::builder(&model, &plan, &engine)
///     .recorder(Recorder::in_memory())
///     .channel_capacity(4)
///     .build();
/// # let _ = runtime;
/// ```
#[derive(Debug)]
pub struct RuntimeBuilder<'a> {
    model: &'a Model,
    plan: &'a Plan,
    engine: &'a Engine<'a>,
    throttle: Option<Throttle>,
    failed: HashSet<usize>,
    recorder: Recorder,
    channel_capacity: Option<usize>,
}

impl<'a> RuntimeBuilder<'a> {
    pub(crate) fn new(model: &'a Model, plan: &'a Plan, engine: &'a Engine<'a>) -> Self {
        RuntimeBuilder {
            model,
            plan,
            engine,
            throttle: None,
            failed: HashSet::new(),
            recorder: Recorder::noop(),
            channel_capacity: None,
        }
    }

    /// Telemetry sink for the run. Defaults to [`Recorder::noop`],
    /// which keeps the hot loop free of clock reads, locks, and
    /// allocations.
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Sleeps each worker to its cost-model duration, so wall-clock
    /// behaviour follows the analytic model (Sec. III).
    pub fn throttle(mut self, throttle: Throttle) -> Self {
        self.throttle = Some(throttle);
        self
    }

    /// Bounds every inter-stage queue to `capacity` in-flight tasks
    /// (backpressure). The default is unbounded, matching the paper's
    /// infinite-queue assumption.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero: a zero-capacity rendezvous queue
    /// would deadlock the scatter-then-gather coordinators.
    pub fn channel_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "channel capacity must be at least 1");
        self.channel_capacity = Some(capacity);
        self
    }

    /// Marks a device as failed (its worker errors instead of
    /// computing) — failure injection for tests and chaos experiments.
    /// May be called repeatedly to fail several devices.
    pub fn failed_device(mut self, device: usize) -> Self {
        self.failed.insert(device);
        self
    }

    /// Builds the runtime.
    ///
    /// # Panics
    ///
    /// Panics if the plan's stages do not tile the model contiguously
    /// (run [`Plan::validate`] first when the plan comes from outside
    /// this workspace).
    pub fn build(self) -> PipelineRuntime<'a> {
        PipelineRuntime::validate_plan_shape(self.model, self.plan);
        PipelineRuntime {
            model: self.model,
            plan: self.plan,
            engine: self.engine,
            throttle: self.throttle,
            failed: self.failed,
            recorder: self.recorder,
            channel_capacity: self.channel_capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pico_partition::{Cluster, CostParams, PicoPlanner, Planner};

    #[test]
    fn builder_defaults_are_noop() {
        let m = pico_model::zoo::mnist_toy();
        let c = Cluster::pi_cluster(4, 1.0);
        let plan = PicoPlanner
            .plan_simple(&m, &c, &CostParams::wifi_50mbps())
            .unwrap();
        let engine = Engine::with_seed(&m, 1);
        let rt = PipelineRuntime::builder(&m, &plan, &engine).build();
        assert!(!rt.recorder.is_enabled());
        assert!(rt.throttle.is_none());
        assert!(rt.failed.is_empty());
        assert!(rt.channel_capacity.is_none());
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_rejected() {
        let m = pico_model::zoo::mnist_toy();
        let c = Cluster::pi_cluster(4, 1.0);
        let plan = PicoPlanner
            .plan_simple(&m, &c, &CostParams::wifi_50mbps())
            .unwrap();
        let engine = Engine::with_seed(&m, 1);
        let _ = PipelineRuntime::builder(&m, &plan, &engine).channel_capacity(0);
    }
}
