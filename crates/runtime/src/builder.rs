use pico_model::Model;
use pico_partition::Plan;
use pico_telemetry::Recorder;
use pico_tensor::{Engine, EngineBackend};

use crate::fault::{FailureSchedule, RecoveryPolicy};
use crate::{PipelineRuntime, Throttle};

/// Configures a [`PipelineRuntime`] with named setters instead of the
/// old positional `with_*` chain.
///
/// ```
/// use pico_partition::{Cluster, CostParams, PicoPlanner, PlanRequest, Planner};
/// use pico_runtime::PipelineRuntime;
/// use pico_telemetry::Recorder;
/// use pico_tensor::Engine;
///
/// let model = pico_model::zoo::mnist_toy();
/// let cluster = Cluster::pi_cluster(4, 1.0);
/// let plan = PicoPlanner
///     .plan(&PlanRequest::new(&model, &cluster, &CostParams::wifi_50mbps()))
///     .unwrap();
/// let engine = Engine::with_seed(&model, 7);
/// let runtime = PipelineRuntime::builder(&model, &plan, &engine)
///     .recorder(Recorder::in_memory())
///     .channel_capacity(4)
///     .build();
/// # let _ = runtime;
/// ```
#[derive(Debug)]
pub struct RuntimeBuilder<'a> {
    model: &'a Model,
    plan: &'a Plan,
    engine: &'a Engine<'a>,
    throttle: Option<Throttle>,
    schedule: FailureSchedule,
    recovery: Option<RecoveryPolicy>,
    recorder: Recorder,
    channel_capacity: Option<usize>,
    backend: Option<EngineBackend>,
    device_backends: Vec<(usize, EngineBackend)>,
}

impl<'a> RuntimeBuilder<'a> {
    pub(crate) fn new(model: &'a Model, plan: &'a Plan, engine: &'a Engine<'a>) -> Self {
        RuntimeBuilder {
            model,
            plan,
            engine,
            throttle: None,
            schedule: FailureSchedule::new(),
            recovery: None,
            recorder: Recorder::noop(),
            channel_capacity: None,
            backend: None,
            device_backends: Vec::new(),
        }
    }

    /// Telemetry sink for the run. Defaults to [`Recorder::noop`],
    /// which keeps the hot loop free of clock reads, locks, and
    /// allocations.
    pub fn recorder(mut self, recorder: Recorder) -> Self {
        self.recorder = recorder;
        self
    }

    /// Sleeps each worker to its cost-model duration, so wall-clock
    /// behaviour follows the analytic model (Sec. III).
    pub fn throttle(mut self, throttle: Throttle) -> Self {
        self.throttle = Some(throttle);
        self
    }

    /// Bounds every inter-stage queue to `capacity` in-flight tasks
    /// (backpressure). The default is
    /// [`DEFAULT_CHANNEL_CAPACITY`](crate::DEFAULT_CHANNEL_CAPACITY) —
    /// deep enough to approximate the paper's infinite-queue
    /// assumption, while keeping every queue bounded.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero: a zero-capacity rendezvous queue
    /// would deadlock the scatter-then-gather coordinators.
    pub fn channel_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "channel capacity must be at least 1");
        self.channel_capacity = Some(capacity);
        self
    }

    /// Marks a device as failed from the first task on (its worker
    /// errors instead of computing) — failure injection for tests and
    /// chaos experiments. May be called repeatedly to fail several
    /// devices; shorthand for a [`FailureSchedule`] entry at task 0.
    pub fn failed_device(mut self, device: usize) -> Self {
        self.schedule = self.schedule.fail(device, 0);
        self
    }

    /// Installs a deterministic failure script: each entry makes a
    /// device fail (or stall, then fail) from a given task index on.
    /// Entries accumulate with any prior
    /// [`failed_device`](Self::failed_device) calls.
    pub fn failure_schedule(mut self, schedule: FailureSchedule) -> Self {
        for f in schedule.entries() {
            self.schedule = match f.stall {
                Some(stall) => self.schedule.fail_with_stall(f.device, f.from_task, stall),
                None => self.schedule.fail(f.device, f.from_task),
            };
        }
        self
    }

    /// Installs a [`RecoveryPolicy`]: device failures are detected and
    /// retried on surviving workers, and a stage that loses every
    /// worker triggers a degraded re-plan instead of failing the run.
    pub fn recovery(mut self, policy: RecoveryPolicy) -> Self {
        self.recovery = Some(policy);
        self
    }

    /// Overrides the compute backend for every worker, forking the
    /// engine once at build time (weights and thread pool are shared
    /// with the original; see [`Engine::fork_backend`]).
    pub fn backend(mut self, backend: EngineBackend) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Overrides the compute backend for one device's workers — how a
    /// heterogeneous cluster runs e.g. int8 on its weakest device while
    /// the rest stay f32. Wins over [`RuntimeBuilder::backend`]; the
    /// last call for a device wins. Forks happen once at build time.
    pub fn device_backend(mut self, device: usize, backend: EngineBackend) -> Self {
        self.device_backends.push((device, backend));
        self
    }

    /// Builds the runtime.
    ///
    /// # Panics
    ///
    /// Panics if the plan's stages do not tile the model contiguously
    /// (run [`Plan::validate`] first when the plan comes from outside
    /// this workspace).
    pub fn build(self) -> PipelineRuntime<'a> {
        PipelineRuntime::validate_plan_shape(self.model, self.plan);
        // Forks are created once here, outside any worker thread, so
        // scoped workers can simply borrow them — and an Int8 fork
        // pays its one-time weight quantization up front, not on the
        // serving path.
        let default_fork = self.backend.map(|b| self.engine.fork_backend(b));
        let device_forks = self
            .device_backends
            .iter()
            .map(|&(d, b)| (d, self.engine.fork_backend(b)))
            .collect();
        PipelineRuntime {
            model: self.model,
            plan: self.plan,
            engine: self.engine,
            default_fork,
            device_forks,
            throttle: self.throttle,
            schedule: self.schedule,
            recovery: self.recovery,
            recorder: self.recorder,
            channel_capacity: self.channel_capacity,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pico_partition::{Cluster, CostParams, PicoPlanner, PlanRequest, Planner};

    #[test]
    fn builder_defaults_are_noop() {
        let m = pico_model::zoo::mnist_toy();
        let c = Cluster::pi_cluster(4, 1.0);
        let plan = PicoPlanner
            .plan(&PlanRequest::new(&m, &c, &CostParams::wifi_50mbps()))
            .unwrap();
        let engine = Engine::with_seed(&m, 1);
        let rt = PipelineRuntime::builder(&m, &plan, &engine).build();
        assert!(!rt.recorder.is_enabled());
        assert!(rt.throttle.is_none());
        assert!(rt.schedule.is_empty());
        assert!(rt.recovery.is_none());
        assert!(rt.channel_capacity.is_none());
    }

    #[test]
    fn failure_schedule_accumulates_with_failed_device() {
        let m = pico_model::zoo::mnist_toy();
        let c = Cluster::pi_cluster(4, 1.0);
        let plan = PicoPlanner
            .plan(&PlanRequest::new(&m, &c, &CostParams::wifi_50mbps()))
            .unwrap();
        let engine = Engine::with_seed(&m, 1);
        let rt = PipelineRuntime::builder(&m, &plan, &engine)
            .failed_device(2)
            .failure_schedule(FailureSchedule::new().fail(3, 5))
            .build();
        assert_eq!(rt.schedule.entries().len(), 2);
        assert!(rt.schedule.injected(2, 0).is_some());
        assert!(rt.schedule.injected(3, 4).is_none());
        assert!(rt.schedule.injected(3, 5).is_some());
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_rejected() {
        let m = pico_model::zoo::mnist_toy();
        let c = Cluster::pi_cluster(4, 1.0);
        let plan = PicoPlanner
            .plan(&PlanRequest::new(&m, &c, &CostParams::wifi_50mbps()))
            .unwrap();
        let engine = Engine::with_seed(&m, 1);
        let _ = PipelineRuntime::builder(&m, &plan, &engine).channel_capacity(0);
    }
}
