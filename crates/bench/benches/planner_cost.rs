//! Criterion benches behind Table II: planner wall-time as the problem
//! grows. PICO stays sub-millisecond-to-millisecond while the BFS
//! optimal search explodes combinatorially.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pico_model::zoo;
use pico_partition::{BfsOptimal, Cluster, CostParams, PicoPlanner, Planner};

fn bench_pico_planner(c: &mut Criterion) {
    let params = CostParams::wifi_50mbps();
    let mut group = c.benchmark_group("pico_planner");
    for (layers, devices) in [(4usize, 4usize), (8, 4), (16, 4), (8, 8), (16, 8)] {
        let model = zoo::toy(layers);
        let cluster = Cluster::pi_cluster(devices, 1.0);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{layers}L_{devices}D")),
            &(model, cluster),
            |b, (model, cluster)| {
                b.iter(|| {
                    PicoPlanner::new()
                        .plan_simple(model, cluster, &params)
                        .unwrap()
                })
            },
        );
    }
    // Real models, the scale BFS can never touch.
    for model in [zoo::vgg16().features(), zoo::yolov2()] {
        let cluster = Cluster::paper_heterogeneous();
        group.bench_with_input(
            BenchmarkId::from_parameter(model.name().to_owned()),
            &model,
            |b, model| {
                b.iter(|| {
                    PicoPlanner::new()
                        .plan_simple(model, &cluster, &params)
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_bfs_small(c: &mut Criterion) {
    let params = CostParams::wifi_50mbps();
    let mut group = c.benchmark_group("bfs_optimal");
    group.sample_size(10);
    for (layers, devices) in [(4usize, 4usize), (6, 4), (8, 4)] {
        let model = zoo::toy(layers);
        let cluster = Cluster::pi_cluster(devices, 1.0);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{layers}L_{devices}D")),
            &(model, cluster),
            |b, (model, cluster)| {
                b.iter(|| BfsOptimal::new().search(model, cluster, &params).unwrap())
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pico_planner, bench_bfs_small);
criterion_main!(benches);
