//! Criterion benches for the queueing simulator and cost model — the
//! substrate every figure's sweep runs on.

use criterion::{criterion_group, criterion_main, Criterion};
use pico_model::zoo;
use pico_partition::{Cluster, CostParams, PicoPlanner, Planner};
use pico_sim::{Arrivals, Simulation};

fn bench_simulation(c: &mut Criterion) {
    let model = zoo::vgg16().features();
    let cluster = Cluster::pi_cluster(8, 1.0);
    let params = CostParams::wifi_50mbps();
    let plan = PicoPlanner::new()
        .plan_simple(&model, &cluster, &params)
        .unwrap();
    let sim = Simulation::new(&model, &cluster, &params);

    c.bench_function("closed_loop_1000_tasks", |b| {
        b.iter(|| sim.run(&plan, &Arrivals::closed_loop(1000)))
    });
    let arrivals = Arrivals::poisson(0.5, 2000.0, 7);
    c.bench_function("poisson_1000s_stream", |b| {
        b.iter(|| sim.run(&plan, &arrivals))
    });
}

fn bench_cost_model(c: &mut Criterion) {
    let model = zoo::yolov2();
    let cluster = Cluster::paper_heterogeneous();
    let params = CostParams::wifi_50mbps();
    let plan = PicoPlanner::new()
        .plan_simple(&model, &cluster, &params)
        .unwrap();
    let cm = params.cost_model(&model);

    c.bench_function("evaluate_yolov2_plan", |b| {
        b.iter(|| cm.evaluate(&plan, &cluster))
    });
    c.bench_function("redundancy_yolov2_plan", |b| {
        b.iter(|| pico_partition::redundancy::plan_work(&model, &plan))
    });
}

criterion_group!(benches, bench_simulation, bench_cost_model);
criterion_main!(benches);
