//! Criterion benches for the tensor substrate: monolithic inference vs
//! halo-region inference, and the split/stitch primitives of the Fig. 6
//! workflow (which the paper found must be memory-level operations to be
//! negligible).

use criterion::{criterion_group, criterion_main, Criterion};
use pico_model::{zoo, Rows};
use pico_tensor::{Engine, Tensor};

fn bench_inference(c: &mut Criterion) {
    let model = zoo::mnist_toy();
    let engine = Engine::with_seed(&model, 1);
    let input = Tensor::random(model.input_shape(), 2);
    let seg = model.full_segment();
    let h = model.output_shape().height;

    c.bench_function("mnist_toy_full_inference", |b| {
        b.iter(|| engine.infer(&input).unwrap())
    });
    c.bench_function("mnist_toy_quarter_region", |b| {
        let rows = Rows::new(0, h / 4);
        let tile = input
            .slice_rows(model.segment_input_rows(seg, rows))
            .unwrap();
        b.iter(|| engine.infer_region(seg, rows, &tile).unwrap())
    });
}

fn bench_split_stitch(c: &mut Criterion) {
    let model = zoo::vgg16();
    // conv1_1 output: 64 x 224 x 224 (~12.8 MB), the paper's worst case
    // for split/stitch overhead.
    let fmap = Tensor::random(model.unit_output_shape(0), 3);
    let shares = pico_model::rows_split_even(Rows::full(224), 8);

    c.bench_function("split_224x224x64_into_8", |b| {
        b.iter(|| {
            shares
                .iter()
                .map(|r| fmap.slice_rows(*r).unwrap())
                .collect::<Vec<_>>()
        })
    });
    let tiles: Vec<Tensor> = shares
        .iter()
        .map(|r| fmap.slice_rows(*r).unwrap())
        .collect();
    c.bench_function("stitch_8_into_224x224x64", |b| {
        b.iter(|| Tensor::stitch_rows(&tiles).unwrap())
    });
}

criterion_group!(benches, bench_inference, bench_split_stitch);
criterion_main!(benches);
