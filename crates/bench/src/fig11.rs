//! Fig. 11 — "The average latency of different algorithms for YOLOv2":
//! the Fig. 10 workload sweep on YOLOv2, plus the 100 %-workload
//! breakdown the paper shows in Fig. 11b.

use pico_model::zoo;

pub use crate::fig10::{print, LatencyRow, LOADS};

/// The YOLOv2 workload sweep.
pub fn run() -> Vec<LatencyRow> {
    crate::fig10::run_for(&zoo::yolov2())
}

/// Fig. 11b: the 100 %-workload slice (one row per scheme per
/// frequency).
pub fn breakdown_at_full_load(rows: &[LatencyRow]) -> Vec<&LatencyRow> {
    rows.iter()
        .filter(|r| (r.load - 1.0).abs() < 1e-9)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yolov2_latency_shape() {
        let rows = run();
        crate::fig10::assert_latency_shape(&rows);
        // Fig. 11b slice exists for every scheme and frequency.
        let slice = breakdown_at_full_load(&rows);
        assert_eq!(slice.len(), 4 * crate::FREQS_GHZ.len());
        // At 100% of EFL capacity the pipeline is comfortably better.
        for ghz in crate::FREQS_GHZ {
            let get = |s: &str| {
                slice
                    .iter()
                    .find(|r| r.ghz == ghz && r.scheme == s)
                    .expect("present")
                    .avg_latency
            };
            assert!(get("PICO") < get("EFL"));
        }
    }
}
