//! Ablation studies of the design choices DESIGN.md calls out — not in
//! the paper's evaluation, but quantifying why its design decisions
//! matter (and what the extensions buy).

use pico_model::{rows_split_even, zoo, Rows};
use pico_partition::grid::{grid_shapes_for, GridPoint};
use pico_partition::memory::{plan_memory, single_device_memory};
use pico_partition::{
    Assignment, Cluster, CostParams, PicoPlanner, Plan, PlanRequest, Planner, Scheme, Stage,
};

/// Ablation 1 — decomposing Algorithm 2 on the heterogeneous Table I
/// cluster: (a) capacity-sorted greedy device-to-stage assignment, and
/// (b) divide-and-conquer share balancing within stages. Each is ablated
/// independently.
#[derive(Debug, Clone, Copy)]
pub struct BalancingRow {
    /// Model label.
    pub model: &'static str,
    /// Full Algorithm 2: sorted greedy + balanced shares.
    pub full_period: f64,
    /// Sorted greedy assignment, but even row splits.
    pub no_balance_period: f64,
    /// Round-robin device assignment (capacities mixed per stage), with
    /// balanced shares.
    pub no_greedy_period: f64,
    /// Round-robin assignment and even splits — neither half of
    /// Algorithm 2.
    pub naive_period: f64,
}

impl BalancingRow {
    /// Throughput gained by the full Algorithm 2 over the naive variant.
    pub fn gain(&self) -> f64 {
        self.naive_period / self.full_period
    }
}

/// Replaces every stage's shares with even splits over the same devices.
fn evenize(model: &pico_model::Model, plan: &Plan) -> Plan {
    let stages = plan
        .stages
        .iter()
        .map(|s| {
            let devices: Vec<usize> = s.device_ids().collect();
            let h = model.unit_output_shape(s.segment.end - 1).height;
            let shares = rows_split_even(Rows::full(h), devices.len());
            Stage::new(
                s.segment,
                devices
                    .into_iter()
                    .zip(shares)
                    .map(|(d, r)| Assignment::new(d, r))
                    .collect(),
            )
        })
        .collect();
    Plan::new(plan.scheme, plan.mode, stages)
}

/// Re-assigns devices to the plan's stage slots round-robin in id order
/// (ignoring capacities), optionally balancing shares.
fn round_robin(model: &pico_model::Model, cluster: &Cluster, plan: &Plan, balance: bool) -> Plan {
    let slots: Vec<usize> = plan.stages.iter().map(Stage::worker_count).collect();
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); slots.len()];
    let mut stage = 0;
    for d in cluster.devices() {
        // Find the next stage with a free slot, round-robin.
        let mut tries = 0;
        while groups[stage].len() >= slots[stage] && tries <= slots.len() {
            stage = (stage + 1) % slots.len();
            tries += 1;
        }
        if groups[stage].len() < slots[stage] {
            groups[stage].push(d.id);
            stage = (stage + 1) % slots.len();
        }
    }
    let stages = plan
        .stages
        .iter()
        .zip(groups)
        .map(|(s, ids)| {
            let h = model.unit_output_shape(s.segment.end - 1).height;
            let shares = if balance {
                let devices: Vec<&pico_partition::Device> = ids
                    .iter()
                    .map(|id| cluster.device(*id).expect("id from cluster"))
                    .collect();
                pico_partition::balance_rows(model, s.segment, Rows::full(h), &devices)
            } else {
                rows_split_even(Rows::full(h), ids.len())
            };
            Stage::new(
                s.segment,
                ids.into_iter()
                    .zip(shares)
                    .map(|(d, r)| Assignment::new(d, r))
                    .collect(),
            )
        })
        .collect();
    Plan::new(plan.scheme, plan.mode, stages)
}

/// Runs the Algorithm 2 decomposition ablation.
pub fn balancing() -> Vec<BalancingRow> {
    let cluster = Cluster::paper_heterogeneous();
    let params = CostParams::wifi_50mbps();
    [
        ("vgg16", zoo::vgg16().features()),
        ("yolov2", zoo::yolov2()),
    ]
    .into_iter()
    .map(|(label, model)| {
        let plan = PicoPlanner::new()
            .plan(&PlanRequest::new(&model, &cluster, &params))
            .expect("plans");
        let cm = params.cost_model(&model);
        let period = |p: &Plan| cm.evaluate(p, &cluster).period;
        BalancingRow {
            model: label,
            full_period: period(&plan),
            no_balance_period: period(&evenize(&model, &plan)),
            no_greedy_period: period(&round_robin(&model, &cluster, &plan, true)),
            naive_period: period(&round_robin(&model, &cluster, &plan, false)),
        }
    })
    .collect()
}

/// Ablation 2 — bandwidth sweep: each scheme's period across network
/// settings (the "various network settings" of the abstract).
#[derive(Debug, Clone, Copy)]
pub struct BandwidthRow {
    /// Link bandwidth in Mbps.
    pub mbps: f64,
    /// Scheme.
    pub scheme: Scheme,
    /// Pipeline period (s).
    pub period: f64,
}

/// Sweeps bandwidth for VGG16 on 8 homogeneous devices.
pub fn bandwidth_sweep() -> Vec<BandwidthRow> {
    let model = zoo::vgg16().features();
    let cluster = Cluster::pi_cluster(8, 1.0);
    let mut rows = Vec::new();
    for mbps in [5.0, 10.0, 25.0, 50.0, 100.0, 200.0] {
        let params = CostParams::new(mbps * 1e6);
        for (scheme, planner) in crate::paper_planners() {
            let Ok(plan) = planner.plan(&PlanRequest::new(&model, &cluster, &params)) else {
                continue;
            };
            let period = params.cost_model(&model).evaluate(&plan, &cluster).period;
            rows.push(BandwidthRow {
                mbps,
                scheme,
                period,
            });
        }
    }
    rows
}

/// Ablation 3 — the Eq. 1 period/latency trade-off: PICO's period as the
/// latency limit `T_lim` tightens.
#[derive(Debug, Clone, Copy)]
pub struct TlimRow {
    /// `T_lim` as a fraction of the unconstrained pipeline latency.
    pub fraction: f64,
    /// Achieved period (s); `None` when infeasible.
    pub period: Option<f64>,
    /// Achieved latency (s); `None` when infeasible.
    pub latency: Option<f64>,
}

/// Sweeps the latency constraint for VGG16 on 8 devices.
pub fn tlim_sweep() -> Vec<TlimRow> {
    let model = zoo::vgg16().features();
    let cluster = Cluster::pi_cluster(8, 1.0);
    let free = CostParams::wifi_50mbps();
    let cm = free.cost_model(&model);
    let base = cm.evaluate(
        &PicoPlanner::new()
            .plan(&PlanRequest::new(&model, &cluster, &free))
            .expect("plans"),
        &cluster,
    );
    [1.0, 0.8, 0.6, 0.5, 0.4, 0.3]
        .into_iter()
        .map(|fraction| {
            let params = free.with_t_lim(base.latency * fraction);
            match PicoPlanner::new().plan(&PlanRequest::new(&model, &cluster, &params)) {
                Ok(plan) => {
                    let m = cm.evaluate(&plan, &cluster);
                    TlimRow {
                        fraction,
                        period: Some(m.period),
                        latency: Some(m.latency),
                    }
                }
                Err(_) => TlimRow {
                    fraction,
                    period: None,
                    latency: None,
                },
            }
        })
        .collect()
}

/// Ablation 4 — 1-D strips vs 2-D grids (the DeepThings extension):
/// every factorization of 8 devices over a deep fused VGG16 prefix.
pub fn grid_shapes() -> Vec<GridPoint> {
    grid_shapes_for(&zoo::vgg16().features(), 10, 8)
}

/// Ablation 5 — per-scheme memory footprint on the heterogeneous
/// cluster (the paper's motivation that cooperation reduces per-device
/// memory).
#[derive(Debug, Clone)]
pub struct MemoryRow {
    /// Scheme.
    pub scheme: Scheme,
    /// Worst-case single-device weights + activations (bytes).
    pub max_device_bytes: usize,
    /// The monolithic single-device baseline (bytes).
    pub single_device_bytes: usize,
}

/// Computes the memory ablation for VGG16.
pub fn memory_by_scheme() -> Vec<MemoryRow> {
    let model = zoo::vgg16().features();
    let cluster = Cluster::paper_heterogeneous();
    let params = CostParams::wifi_50mbps();
    let baseline = single_device_memory(&model).total_bytes();
    crate::paper_planners()
        .into_iter()
        .filter_map(|(scheme, planner)| {
            let plan = planner
                .plan(&PlanRequest::new(&model, &cluster, &params))
                .ok()?;
            let max_device_bytes = plan_memory(&model, &plan)
                .iter()
                .map(|d| d.total_bytes())
                .max()
                .unwrap_or(0);
            Some(MemoryRow {
                scheme,
                max_device_bytes,
                single_device_bytes: baseline,
            })
        })
        .collect()
}

/// Ablation 6 — intra-block path parallelism (the paper's future work):
/// per-block speedup a path-level partitioner could add for InceptionV3,
/// at LAN and WiFi bandwidths.
#[derive(Debug, Clone)]
pub struct BlockParallelRow {
    /// Block name.
    pub block: String,
    /// Parallel paths in the block.
    pub paths: usize,
    /// Speedup at 1 Gbps.
    pub speedup_lan: f64,
    /// Speedup at the paper's 50 Mbps WiFi.
    pub speedup_wifi: f64,
}

/// Computes the block-parallelism ablation on 4 devices.
pub fn block_parallelism() -> Vec<BlockParallelRow> {
    use pico_partition::block_parallel::analyze_blocks;
    let model = zoo::inception_v3().features();
    let cluster = Cluster::pi_cluster(4, 1.0);
    let lan = analyze_blocks(&model, &cluster, &CostParams::new(1e9), 4);
    let wifi = analyze_blocks(&model, &cluster, &CostParams::wifi_50mbps(), 4);
    lan.into_iter()
        .zip(wifi)
        .map(|(l, w)| BlockParallelRow {
            block: l.name.clone(),
            paths: l.paths,
            speedup_lan: l.speedup(),
            speedup_wifi: w.speedup(),
        })
        .collect()
}

/// Prints all ablations as CSV blocks.
pub fn print_all() {
    println!("# Ablation 1 — Algorithm 2 decomposition (heterogeneous cluster)");
    println!("model,full_period_s,no_balance_s,no_greedy_s,naive_s,gain_over_naive");
    for r in balancing() {
        println!(
            "{},{:.4},{:.4},{:.4},{:.4},{:.3}",
            r.model,
            r.full_period,
            r.no_balance_period,
            r.no_greedy_period,
            r.naive_period,
            r.gain()
        );
    }
    println!();

    println!("# Ablation 2 — bandwidth sweep (VGG16, 8 devices)");
    println!("mbps,scheme,period_s");
    for r in bandwidth_sweep() {
        println!("{},{},{:.4}", r.mbps, r.scheme, r.period);
    }
    println!();

    println!("# Ablation 3 — T_lim period/latency trade-off (VGG16, 8 devices)");
    println!("t_lim_fraction,period_s,latency_s");
    for r in tlim_sweep() {
        match (r.period, r.latency) {
            (Some(p), Some(l)) => println!("{:.2},{:.4},{:.4}", r.fraction, p, l),
            _ => println!("{:.2},infeasible,infeasible", r.fraction),
        }
    }
    println!();

    println!("# Ablation 4 — strip vs grid partitioning (VGG16 prefix, 8 devices)");
    println!("grid,total_gflops,per_device_gflops,redundancy,max_input_tile_kb");
    for p in grid_shapes() {
        println!(
            "{}x{},{:.3},{:.3},{:.4},{:.1}",
            p.grid_rows,
            p.grid_cols,
            p.total_flops / 1e9,
            p.per_device_flops / 1e9,
            p.redundancy(),
            p.max_input_tile_bytes as f64 / 1024.0
        );
    }
    println!();

    println!("# Ablation 5 — worst-device memory by scheme (VGG16, heterogeneous)");
    println!("scheme,max_device_mb,single_device_mb,reduction");
    for r in memory_by_scheme() {
        println!(
            "{},{:.1},{:.1},{:.2}x",
            r.scheme,
            r.max_device_bytes as f64 / 1e6,
            r.single_device_bytes as f64 / 1e6,
            r.single_device_bytes as f64 / r.max_device_bytes as f64
        );
    }
    println!();

    println!("# Ablation 6 — intra-block path parallelism (InceptionV3, 4 devices)");
    println!("block,paths,speedup_1gbps,speedup_50mbps");
    for r in block_parallelism() {
        println!(
            "{},{},{:.2},{:.2}",
            r.block, r.paths, r.speedup_lan, r.speedup_wifi
        );
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm2_beats_the_naive_variant() {
        for r in balancing() {
            // The full Algorithm 2 clearly beats ignoring capacities
            // altogether.
            assert!(
                r.gain() > 1.05,
                "{}: full {} vs naive {}",
                r.model,
                r.full_period,
                r.naive_period
            );
            // Dropping balancing alone never helps.
            assert!(r.no_balance_period >= r.full_period - 1e-12, "{}", r.model);
            // The naive variant is (weakly) the worst of the four.
            for other in [r.full_period, r.no_balance_period, r.no_greedy_period] {
                assert!(r.naive_period >= other - 1e-9, "{}", r.model);
            }
            // Note: `no_greedy` can edge out `full` — divide-and-conquer
            // share balancing compensates for capacity-blind placement,
            // which is itself a finding about Algorithm 2's greedy being
            // a heuristic rather than optimal.
        }
    }

    #[test]
    fn pico_wins_at_every_bandwidth() {
        let rows = bandwidth_sweep();
        for mbps in [5.0, 50.0, 200.0] {
            let get = |s: Scheme| {
                rows.iter()
                    .find(|r| r.mbps == mbps && r.scheme == s)
                    .expect("row present")
                    .period
            };
            for s in [Scheme::LayerWise, Scheme::EarlyFused, Scheme::OptimalFused] {
                assert!(get(Scheme::Pico) < get(s), "{mbps} Mbps vs {s}");
            }
        }
    }

    #[test]
    fn slower_networks_hurt_everyone() {
        let rows = bandwidth_sweep();
        for (scheme, _) in crate::paper_planners() {
            let slow = rows
                .iter()
                .find(|r| r.mbps == 5.0 && r.scheme == scheme)
                .expect("row present")
                .period;
            let fast = rows
                .iter()
                .find(|r| r.mbps == 200.0 && r.scheme == scheme)
                .expect("row present")
                .period;
            assert!(slow >= fast, "{scheme}");
        }
    }

    #[test]
    fn tighter_t_lim_trades_period_for_latency() {
        let rows = tlim_sweep();
        // Feasible rows: latency respects the bound; period is
        // non-decreasing as the bound tightens.
        let mut last_period = 0.0;
        for r in &rows {
            if let (Some(p), Some(_)) = (r.period, r.latency) {
                assert!(p >= last_period - 1e-12, "period fell at {}", r.fraction);
                last_period = p;
            }
        }
        // The unconstrained fraction is always feasible.
        assert!(rows[0].period.is_some());
    }

    #[test]
    fn some_grid_beats_strips() {
        let shapes = grid_shapes();
        let strips = shapes
            .iter()
            .find(|p| p.grid_cols == 1)
            .expect("strip factorization present");
        let best = shapes
            .iter()
            .min_by(|a, b| a.total_flops.partial_cmp(&b.total_flops).unwrap())
            .expect("non-empty");
        assert!(best.total_flops < strips.total_flops);
        assert!(best.max_input_tile_bytes < strips.max_input_tile_bytes);
    }

    #[test]
    fn every_scheme_reduces_worst_device_memory() {
        for r in memory_by_scheme() {
            if r.scheme == Scheme::LayerWise {
                continue; // LW devices hold the full model's weights
            }
            assert!(
                r.max_device_bytes < r.single_device_bytes,
                "{}: {} vs {}",
                r.scheme,
                r.max_device_bytes,
                r.single_device_bytes
            );
        }
    }

    #[test]
    fn block_parallelism_matters_on_lan_not_wifi() {
        let rows = block_parallelism();
        let best_lan = rows.iter().map(|r| r.speedup_lan).fold(0.0, f64::max);
        let best_wifi = rows.iter().map(|r| r.speedup_wifi).fold(0.0, f64::max);
        assert!(best_lan > 1.5, "lan {best_lan}");
        assert!(best_wifi < best_lan, "wifi {best_wifi} lan {best_lan}");
    }

    #[test]
    fn pico_has_smallest_worst_device_memory() {
        let rows = memory_by_scheme();
        let pico = rows
            .iter()
            .find(|r| r.scheme == Scheme::Pico)
            .expect("PICO row");
        for r in &rows {
            assert!(pico.max_device_bytes <= r.max_device_bytes, "{}", r.scheme);
        }
    }
}
