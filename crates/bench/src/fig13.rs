//! Fig. 13 — "The comparison of resource utilization and redundant
//! computation for PICO and BFS": the 8-conv + 2-pool toy model
//! ("64x64 MINIST" input) on a 6-device heterogeneous cluster.

use std::time::Duration;

use pico_model::zoo;
use pico_partition::{BfsOptimal, Cluster, CostParams, PicoPlanner, PlanRequest, Planner};
use pico_sim::{Arrivals, DeviceStat, Simulation};

/// One planner's outcome on the Fig. 13 setup.
#[derive(Debug, Clone)]
pub struct Fig13Row {
    /// `"PICO"` or `"BFS"`.
    pub planner: &'static str,
    /// Planner wall-time.
    pub plan_time: Duration,
    /// Predicted pipeline period.
    pub period: f64,
    /// Per-device utilization/redundancy, ascending device id.
    pub devices: Vec<DeviceStat>,
    /// Mean utilization over active devices.
    pub avg_utilization: f64,
}

/// Runs the PICO-vs-BFS comparison.
pub fn run() -> Vec<Fig13Row> {
    let model = zoo::mnist_toy();
    let cluster = Cluster::paper_heterogeneous_6();
    let params = CostParams::wifi_50mbps();
    let cm = params.cost_model(&model);
    let sim = Simulation::new(&model, &cluster, &params);

    let mut rows = Vec::new();
    for (name, planner) in [
        ("PICO", Box::new(PicoPlanner::new()) as Box<dyn Planner>),
        ("BFS", Box::new(BfsOptimal::new())),
    ] {
        let t0 = std::time::Instant::now();
        let plan = planner
            .plan(&PlanRequest::new(&model, &cluster, &params))
            .expect("toy model plans");
        let plan_time = t0.elapsed();
        let metrics = cm.evaluate(&plan, &cluster);
        let report = sim.run(&plan, &Arrivals::closed_loop(100));
        rows.push(Fig13Row {
            planner: name,
            plan_time,
            period: metrics.period,
            avg_utilization: report.avg_utilization(),
            devices: report.device_stats,
        });
    }
    rows
}

/// Prints the comparison.
pub fn print(rows: &[Fig13Row]) {
    println!("# Fig. 13 — PICO vs BFS on mnist_toy (8 conv + 2 pool), 6 heterogeneous devices");
    println!("planner,plan_time_ms,period_s,metric,d0,d1,d2,d3,d4,d5");
    for r in rows {
        let utils: Vec<String> = r
            .devices
            .iter()
            .map(|d| format!("{:.1}", 100.0 * d.utilization))
            .collect();
        let redus: Vec<String> = r
            .devices
            .iter()
            .map(|d| format!("{:.1}", 100.0 * d.redundancy))
            .collect();
        println!(
            "{},{:.1},{:.4},utilization_pct,{}",
            r.planner,
            r.plan_time.as_secs_f64() * 1e3,
            r.period,
            utils.join(",")
        );
        println!(
            "{},{:.1},{:.4},redundancy_pct,{}",
            r.planner,
            r.plan_time.as_secs_f64() * 1e3,
            r.period,
            redus.join(",")
        );
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bfs_at_least_matches_pico_period() {
        let rows = run();
        let pico = rows.iter().find(|r| r.planner == "PICO").expect("PICO row");
        let bfs = rows.iter().find(|r| r.planner == "BFS").expect("BFS row");
        assert!(
            bfs.period <= pico.period * 1.0001,
            "bfs {} pico {}",
            bfs.period,
            pico.period
        );
        // "Considering the time taken by PICO and BFS, the performance
        // of PICO is acceptable": within 40% of optimal here (the paper
        // shows ~80% vs ~95% utilization, a similar-sized gap).
        assert!(
            pico.period <= bfs.period * 1.4,
            "pico {} bfs {}",
            pico.period,
            bfs.period
        );
        // The optimal plan also keeps devices busier.
        assert!(bfs.avg_utilization >= pico.avg_utilization * 0.95);
    }

    #[test]
    fn utilizations_are_high() {
        // Paper: all 6 devices above ~80% (PICO) and ~95% (BFS); accept
        // a softer floor for the mean on our substrate.
        for r in run() {
            // The paper's Pis reach >80%; our 50 Mbps simulated link
            // makes the tiny model comm-heavier, so the floor is lower
            // (recorded in EXPERIMENTS.md).
            assert!(
                r.avg_utilization > 0.35,
                "{}: avg utilization {:.3}",
                r.planner,
                r.avg_utilization
            );
            assert_eq!(r.devices.len(), 6);
        }
    }

    #[test]
    fn pico_plans_orders_of_magnitude_faster() {
        let rows = run();
        let pico = rows.iter().find(|r| r.planner == "PICO").expect("PICO row");
        let bfs = rows.iter().find(|r| r.planner == "BFS").expect("BFS row");
        assert!(
            bfs.plan_time > pico.plan_time * 10,
            "bfs {:?} pico {:?}",
            bfs.plan_time,
            pico.plan_time
        );
    }
}
