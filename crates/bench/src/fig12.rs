//! Fig. 12 — "The speedup ratio for graph-based CNNs": PICO's
//! throughput speedup over single-device execution for ResNet34 and
//! InceptionV3 at several CPU frequencies and device counts
//! (blocks treated as special layers, Sec. IV-B).

use pico_model::{zoo, Model};
use pico_partition::{CostParams, PicoPlanner, PlanRequest, Planner};

use crate::{cluster, DEVICE_COUNTS, FREQS_GHZ};

/// One (model, frequency, devices) speedup sample.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Model name.
    pub model: String,
    /// CPU frequency in GHz.
    pub ghz: f64,
    /// Devices cooperating.
    pub devices: usize,
    /// Throughput speedup over one device of the same frequency.
    pub speedup: f64,
}

/// Runs the graph-CNN speedup sweep.
pub fn run() -> Vec<SpeedupRow> {
    let params = CostParams::wifi_50mbps();
    let mut rows = Vec::new();
    for model in [zoo::resnet34().features(), zoo::inception_v3().features()] {
        for ghz in FREQS_GHZ {
            let base = period_of(&model, 1, ghz, &params);
            for devices in DEVICE_COUNTS {
                let period = period_of(&model, devices, ghz, &params);
                rows.push(SpeedupRow {
                    model: model.name().to_owned(),
                    ghz,
                    devices,
                    speedup: base / period,
                });
            }
        }
    }
    rows
}

fn period_of(model: &Model, devices: usize, ghz: f64, params: &CostParams) -> f64 {
    let c = cluster(devices, ghz);
    let plan = PicoPlanner::new()
        .plan(&PlanRequest::new(model, &c, params))
        .expect("PICO plans");
    params.cost_model(model).evaluate(&plan, &c).period
}

/// Prints the sweep as CSV.
pub fn print(rows: &[SpeedupRow]) {
    println!("# Fig. 12 — graph-CNN speedup (PICO vs one device)");
    println!("model,ghz,devices,speedup");
    for r in rows {
        println!("{},{},{},{:.2}", r.model, r.ghz, r.devices, r.speedup);
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at<'a>(rows: &'a [SpeedupRow], model: &str, ghz: f64, d: usize) -> &'a SpeedupRow {
        rows.iter()
            .find(|r| r.model.starts_with(model) && r.ghz == ghz && r.devices == d)
            .unwrap_or_else(|| panic!("missing ({model},{ghz},{d})"))
    }

    #[test]
    fn speedups_match_paper_bands() {
        let rows = run();
        // Paper: ~5x for ResNet34, ~4x for InceptionV3 at 8 devices.
        // Accept generous bands around those (our substrate differs).
        // Note: the paper also reports ResNet34 speeding up *more* than
        // InceptionV3; our cost model puts the two within a few percent
        // of each other (recorded as a deviation in EXPERIMENTS.md) —
        // the band check is the stable part of the shape.
        let r8 = at(&rows, "resnet34", FREQS_GHZ[0], 8).speedup;
        let i8 = at(&rows, "inception_v3", FREQS_GHZ[0], 8).speedup;
        assert!((3.0..8.0).contains(&r8), "resnet34 speedup {r8}");
        assert!((2.5..8.0).contains(&i8), "inception speedup {i8}");
    }

    #[test]
    fn low_frequency_speeds_up_more() {
        // "The speedup effect is more obvious with low CPU frequency."
        let rows = run();
        for model in ["resnet34", "inception_v3"] {
            let slow = at(&rows, model, FREQS_GHZ[0], 8).speedup;
            let fast = at(&rows, model, FREQS_GHZ[2], 8).speedup;
            assert!(slow >= fast * 0.95, "{model}: slow {slow} fast {fast}");
        }
    }

    #[test]
    fn speedup_is_monotone_in_devices() {
        let rows = run();
        for model in ["resnet34", "inception_v3"] {
            for ghz in FREQS_GHZ {
                let series: Vec<f64> = DEVICE_COUNTS
                    .iter()
                    .map(|d| at(&rows, model, ghz, *d).speedup)
                    .collect();
                for w in series.windows(2) {
                    assert!(w[1] >= w[0] * 0.98, "{model} {ghz}: {series:?}");
                }
                assert!((series[0] - 1.0).abs() < 1e-9);
            }
        }
    }
}
