//! Fig. 10 — "The average latency of different algorithms for VGG16":
//! average inference latency (waiting + processing) under Poisson
//! arrivals at 40–150 % of the cluster capacity, for EFL / OFL / PICO /
//! APICO. The paper defines cluster capacity as the EFL scheme's
//! throughput.

use pico_core::Pico;
use pico_model::{zoo, Model};
use pico_partition::{Cluster, CostParams, EarlyFused, OptimalFused, PlanRequest, Planner};
use pico_sim::{Arrivals, Simulation};

use crate::FREQS_GHZ;

/// Workload levels as fractions of EFL capacity.
pub const LOADS: [f64; 12] = [0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3, 1.4, 1.5];

/// One (frequency, load, scheme) sample.
#[derive(Debug, Clone)]
pub struct LatencyRow {
    /// CPU frequency in GHz.
    pub ghz: f64,
    /// Workload as a fraction of EFL capacity.
    pub load: f64,
    /// Scheme label (`EFL`, `OFL`, `PICO`, `APICO`).
    pub scheme: &'static str,
    /// Average inference latency (s), mean over 3 seeded runs.
    pub avg_latency: f64,
}

/// Runs the workload sweep for one model on an 8-device cluster.
pub fn run_for(model: &Model) -> Vec<LatencyRow> {
    let params = CostParams::wifi_50mbps();
    let mut rows = Vec::new();
    for ghz in FREQS_GHZ {
        let cluster = Cluster::pi_cluster(8, ghz);
        let pico = Pico::new(model.clone(), cluster.clone());
        let efl = EarlyFused::new()
            .plan(&PlanRequest::new(model, &cluster, &params))
            .expect("EFL plans");
        let ofl = OptimalFused::new()
            .plan(&PlanRequest::new(model, &cluster, &params))
            .expect("OFL plans");
        let pipeline = pico.plan().expect("PICO plans");
        let capacity = 1.0 / pico.predict(&efl).period;
        // "We execute the inference process for 10 minutes and repeat
        // them 3 times."
        let horizon = 600.0;
        let sim = Simulation::new(model, &cluster, &params);
        for load in LOADS {
            let lambda = load * capacity;
            let mut sums = [0.0f64; 4]; // EFL, OFL, PICO, APICO
            const SEEDS: [u64; 3] = [11, 22, 33];
            for seed in SEEDS {
                let arrivals = Arrivals::poisson(lambda, horizon, seed);
                sums[0] += sim.run(&efl, &arrivals).avg_latency;
                sums[1] += sim.run(&ofl, &arrivals).avg_latency;
                sums[2] += sim.run(&pipeline, &arrivals).avg_latency;
                let (r, _) = pico
                    .run_adaptive(&arrivals, 30.0, 0.4)
                    .expect("adaptive candidates plan");
                sums[3] += r.avg_latency;
            }
            for (i, scheme) in ["EFL", "OFL", "PICO", "APICO"].iter().enumerate() {
                rows.push(LatencyRow {
                    ghz,
                    load,
                    scheme,
                    avg_latency: sums[i] / SEEDS.len() as f64,
                });
            }
        }
    }
    rows
}

/// The VGG16 sweep (Fig. 10).
pub fn run() -> Vec<LatencyRow> {
    run_for(&zoo::vgg16().features())
}

/// Prints a latency sweep as CSV.
pub fn print(title: &str, rows: &[LatencyRow]) {
    println!("# {title}");
    println!("ghz,load,scheme,avg_latency_s");
    for r in rows {
        println!("{},{:.2},{},{:.3}", r.ghz, r.load, r.scheme, r.avg_latency);
    }
    println!();
}

/// Shape assertions shared with Fig. 11.
#[cfg(test)]
pub(crate) fn assert_latency_shape(rows: &[LatencyRow]) {
    let at = |ghz: f64, load: f64, scheme: &str| {
        rows.iter()
            .find(|r| r.ghz == ghz && (r.load - load).abs() < 1e-9 && r.scheme == scheme)
            .unwrap_or_else(|| panic!("missing ({ghz},{load},{scheme})"))
            .avg_latency
    };
    for ghz in FREQS_GHZ {
        // Under heavy load PICO keeps latency stable while EFL's queue
        // explodes (paper: 1.7-6.5x reduction).
        let ratio = at(ghz, 1.5, "EFL") / at(ghz, 1.5, "PICO");
        assert!(ratio > 1.7, "{ghz} GHz: EFL/PICO ratio {ratio}");
        // Latency is non-decreasing in load for the one-stage schemes.
        let efl: Vec<f64> = LOADS.iter().map(|l| at(ghz, *l, "EFL")).collect();
        for w in efl.windows(2) {
            assert!(w[1] >= w[0] * 0.95, "EFL latency fell: {efl:?}");
        }
        // APICO tracks the better static scheme at both extremes
        // (within noise).
        for load in [0.4, 1.5] {
            let apico = at(ghz, load, "APICO");
            let best = at(ghz, load, "OFL").min(at(ghz, load, "PICO"));
            assert!(
                apico <= best * 1.35,
                "{ghz} GHz load {load}: APICO {apico} vs best {best}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn vgg16_latency_shape() {
        super::assert_latency_shape(&super::run());
    }
}
