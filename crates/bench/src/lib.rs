//! Benchmark harness regenerating every table and figure of the PICO
//! paper's evaluation (Sec. V).
//!
//! Each experiment lives in its own module with a `run()` returning
//! structured rows and a `print()` writing the same series the paper
//! plots; the `src/bin/` binaries are thin wrappers. Absolute numbers
//! come from the simulated cluster, so they differ from the Raspberry Pi
//! testbed — the *shapes* (who wins, by what factor, where crossovers
//! fall) are the reproduction targets, asserted in this crate's tests
//! and recorded in `EXPERIMENTS.md`.
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig02`] | per-layer comm/comp shares (VGG16, YOLOv2) |
//! | [`fig04`] | fused-layer FLOPs vs devices / fused layers |
//! | [`fig08`] | cluster capacity, VGG16 |
//! | [`fig09`] | cluster capacity, YOLOv2 |
//! | [`fig10`] | avg latency vs workload, VGG16 |
//! | [`fig11`] | avg latency vs workload, YOLOv2 |
//! | [`fig12`] | graph-CNN speedups (ResNet34, InceptionV3) |
//! | [`table1`] | per-device utilization/redundancy, heterogeneous mix |
//! | [`table2`] | planner optimization cost, PICO vs BFS |
//! | [`fig13`] | PICO-vs-BFS utilization/redundancy on the toy model |
//!
//! [`ablation`] adds studies beyond the paper: share balancing vs even
//! splits, bandwidth sweeps, the `T_lim` trade-off, strip-vs-grid
//! partitioning, and per-scheme memory footprints.
//!
//! Micro-benchmarks live in [`harness`] (the dependency-free
//! measurement protocol), [`suites`] (the `kernels` / `planner` / `e2e`
//! suites behind `pico bench`), and [`report`] (machine-readable JSON
//! with a strict reader). See `DESIGN.md` §13 for why gates compare
//! ratios, never wall-clock.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod fig02;
pub mod fig04;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod harness;
pub mod report;
pub mod suites;
pub mod table1;
pub mod table2;

use pico_partition::{Cluster, EarlyFused, LayerWise, OptimalFused, PicoPlanner, Planner, Scheme};

/// The CPU frequency levels (GHz) the capacity/speedup sweeps use — the
/// paper caps its Pi 4B cores at several frequencies between 600 MHz
/// and 1.5 GHz.
pub const FREQS_GHZ: [f64; 3] = [0.6, 1.0, 1.5];

/// Device counts swept in the capacity experiments (Figs. 8/9).
pub const DEVICE_COUNTS: [usize; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

/// The four schemes the paper compares, with planners.
pub fn paper_planners() -> Vec<(Scheme, Box<dyn Planner>)> {
    vec![
        (Scheme::LayerWise, Box::new(LayerWise::new())),
        (Scheme::EarlyFused, Box::new(EarlyFused::new())),
        (Scheme::OptimalFused, Box::new(OptimalFused::new())),
        (Scheme::Pico, Box::new(PicoPlanner::new())),
    ]
}

/// A homogeneous Pi cluster at the given size and frequency.
pub fn cluster(n: usize, ghz: f64) -> Cluster {
    Cluster::pi_cluster(n, ghz)
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}
