//! Fig. 9 — "The cluster capacity when executing YOLOv2": the Fig. 8
//! sweep on the deeper model, where layer-wise parallelization collapses
//! under its own communication.

use pico_model::zoo;

pub use crate::fig08::{print, CapacityRow};

/// The YOLOv2 capacity sweep.
pub fn run() -> Vec<CapacityRow> {
    crate::fig08::run_for(&zoo::yolov2())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FREQS_GHZ;
    use pico_partition::Scheme;

    #[test]
    fn yolov2_capacity_shape() {
        crate::fig08::assert_capacity_shape(&run());
    }

    #[test]
    fn layer_wise_gains_little_from_devices_when_fast() {
        // The paper's observation: with rich compute (their 1 GHz case),
        // adding devices barely helps LW on YOLOv2 because per-layer
        // communication dominates.
        let rows = run();
        let fastest = FREQS_GHZ[2];
        let lw = |d: usize| {
            rows.iter()
                .find(|r| r.ghz == fastest && r.devices == d && r.scheme == Scheme::LayerWise)
                .expect("row present")
                .tasks_per_min
        };
        let gain = lw(8) / lw(1);
        assert!(
            gain < 2.0,
            "LW gained {gain}x from 8 devices at {fastest} GHz"
        );
        // ...while PICO keeps scaling with the same devices.
        let pico = |d: usize| {
            rows.iter()
                .find(|r| r.ghz == fastest && r.devices == d && r.scheme == Scheme::Pico)
                .expect("row present")
                .tasks_per_min
        };
        assert!(
            pico(8) / pico(1) > 2.0 * gain,
            "PICO gain {} vs LW gain {gain}",
            pico(8) / pico(1)
        );
    }
}
