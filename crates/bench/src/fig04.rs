//! Fig. 4 — "Computation overhead with different partition settings":
//! FLOPs per device (4a) and total FLOPs (4b) when fusing the first `n`
//! layers of VGG16 across `p` devices.

use pico_model::zoo;
use pico_partition::redundancy::{fused_layer_flops, FusedFlopsPoint};

/// Sweeps devices x fused-units over VGG16's feature extractor.
pub fn run() -> Vec<FusedFlopsPoint> {
    let model = zoo::vgg16().features();
    let mut out = Vec::new();
    for devices in 1..=8usize {
        for fused in 1..=13usize.min(model.len()) {
            out.push(fused_layer_flops(&model, fused, devices));
        }
    }
    out
}

/// Prints both panels as CSV.
pub fn print(points: &[FusedFlopsPoint]) {
    println!("# Fig. 4a/4b (VGG16) — fused-layer FLOPs");
    println!("devices,fused_units,per_device_gflops,total_gflops,monolithic_gflops,redundancy");
    for p in points {
        let red = (p.total_flops - p.monolithic_flops) / p.total_flops;
        println!(
            "{},{},{:.3},{:.3},{:.3},{:.4}",
            p.devices,
            p.fused_units,
            p.per_device_flops / 1e9,
            p.total_flops / 1e9,
            p.monolithic_flops / 1e9,
            red
        );
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(points: &[FusedFlopsPoint], devices: usize, fused: usize) -> &FusedFlopsPoint {
        points
            .iter()
            .find(|p| p.devices == devices && p.fused_units == fused)
            .expect("point in sweep")
    }

    #[test]
    fn redundancy_grows_with_devices_and_depth() {
        let pts = run();
        let red = |d, f| {
            let p = at(&pts, d, f);
            (p.total_flops - p.monolithic_flops) / p.total_flops
        };
        // More devices at fixed depth -> more total redundancy.
        assert!(red(8, 8) > red(2, 8));
        // Deeper fusion at fixed devices -> more redundancy.
        assert!(red(8, 12) > red(8, 4));
        // Single device: none.
        assert!(red(1, 13) < 1e-12);
    }

    #[test]
    fn per_device_flops_fall_then_flatten() {
        // Fig. 4a: parallelism helps, but redundancy erodes the gain on
        // deep fusion — per-device work at 8 devices is far more than
        // total/8.
        let pts = run();
        let deep1 = at(&pts, 1, 12).per_device_flops;
        let deep8 = at(&pts, 8, 12).per_device_flops;
        assert!(deep8 < deep1);
        assert!(
            deep8 > deep1 / 8.0 * 1.1,
            "deep fusion should not scale ideally"
        );
    }
}
