//! Machine-readable bench reports: a hand-rolled JSON writer paired
//! with a **strict** reader built on the workspace's own parser
//! ([`pico_telemetry::json`]).
//!
//! The emitted document (`BENCH_kernels.json` in CI) is the interface
//! between a bench run and whatever inspects it later; `from_json`
//! therefore rejects missing fields, wrong types, and suite-name
//! mismatches instead of guessing, and the golden-shape tests assert
//! that `to_json` → `from_json` is the identity.

use pico_telemetry::json::{self, Value};
use pico_telemetry::TelemetryError;

use crate::harness::BenchRecord;

/// All records of one suite run, in execution order.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchReport {
    /// Suite name (`kernels`, `planner`, `e2e`).
    pub suite: String,
    /// Records in the order they were measured.
    pub records: Vec<BenchRecord>,
}

impl BenchReport {
    /// Creates an empty report for `suite`.
    pub fn new(suite: &str) -> Self {
        BenchReport {
            suite: suite.to_string(),
            records: Vec::new(),
        }
    }

    /// The record named `name`, if present.
    pub fn record(&self, name: &str) -> Option<&BenchRecord> {
        self.records.iter().find(|r| r.name == name)
    }

    /// Median-time ratio `slow / fast` between two named records —
    /// the machine-independent number the CI gate checks (how many
    /// times faster `fast` is).
    pub fn ratio(&self, slow: &str, fast: &str) -> Option<f64> {
        let s = self.record(slow)?;
        let f = self.record(fast)?;
        if f.median_ns == 0 {
            return None;
        }
        Some(s.median_ns as f64 / f.median_ns as f64)
    }

    /// The report's structural shape — suite plus record names in order
    /// — which reruns must reproduce exactly even though timings move.
    pub fn shape(&self) -> (String, Vec<String>) {
        (
            self.suite.clone(),
            self.records.iter().map(|r| r.name.clone()).collect(),
        )
    }

    /// Serializes the report as a single-line JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"suite\":\"");
        out.push_str(&json::escape(&self.suite));
        out.push_str("\",\"records\":[");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"suite\":\"{}\",\"name\":\"{}\",\"warmup\":{},\"iters\":{},\"runs\":{},\"median_ns\":{},\"min_ns\":{},\"flops\":{}}}",
                json::escape(&r.suite),
                json::escape(&r.name),
                r.warmup,
                r.iters,
                r.runs,
                r.median_ns,
                r.min_ns,
                json::fmt_f64(r.flops),
            ));
        }
        out.push_str("]}");
        out
    }

    /// Parses a report, strictly.
    ///
    /// # Errors
    ///
    /// Returns [`TelemetryError::Parse`] for malformed JSON, a missing
    /// or mistyped field, or a record whose `suite` disagrees with the
    /// document's.
    pub fn from_json(text: &str) -> Result<Self, TelemetryError> {
        let doc = json::parse(text)?;
        let suite = require_str(&doc, "suite")?.to_string();
        let records_v = doc
            .get("records")
            .and_then(Value::as_arr)
            .ok_or_else(|| schema_err("missing or non-array 'records'"))?;
        let mut records = Vec::with_capacity(records_v.len());
        for rv in records_v {
            let rec_suite = require_str(rv, "suite")?;
            if rec_suite != suite {
                return Err(schema_err("record suite disagrees with document suite"));
            }
            records.push(BenchRecord {
                suite: rec_suite.to_string(),
                name: require_str(rv, "name")?.to_string(),
                warmup: require_usize(rv, "warmup")?,
                iters: require_usize(rv, "iters")?,
                runs: require_usize(rv, "runs")?,
                median_ns: require_u64(rv, "median_ns")?,
                min_ns: require_u64(rv, "min_ns")?,
                flops: require_f64(rv, "flops")?,
            });
        }
        Ok(BenchReport { suite, records })
    }
}

fn schema_err(reason: &str) -> TelemetryError {
    TelemetryError::Parse {
        offset: 0,
        reason: reason.to_string(),
    }
}

fn require_str<'v>(v: &'v Value, key: &str) -> Result<&'v str, TelemetryError> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| schema_err(&format!("missing or non-string '{key}'")))
}

fn require_f64(v: &Value, key: &str) -> Result<f64, TelemetryError> {
    v.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| schema_err(&format!("missing or non-numeric '{key}'")))
}

fn require_u64(v: &Value, key: &str) -> Result<u64, TelemetryError> {
    let n = require_f64(v, key)?;
    if n < 0.0 || n.fract() != 0.0 || n > u64::MAX as f64 {
        return Err(schema_err(&format!(
            "'{key}' is not a non-negative integer"
        )));
    }
    Ok(n as u64)
}

fn require_usize(v: &Value, key: &str) -> Result<usize, TelemetryError> {
    let n = require_u64(v, key)?;
    usize::try_from(n).map_err(|_| schema_err(&format!("'{key}' overflows usize")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            suite: "kernels".into(),
            records: vec![
                BenchRecord {
                    suite: "kernels".into(),
                    name: "conv3x3_c64/reference".into(),
                    warmup: 2,
                    iters: 10,
                    runs: 5,
                    median_ns: 4_200_000,
                    min_ns: 4_100_000,
                    flops: 1.9e7,
                },
                BenchRecord {
                    suite: "kernels".into(),
                    name: "conv3x3_c64/im2col".into(),
                    warmup: 2,
                    iters: 10,
                    runs: 5,
                    median_ns: 1_000_000,
                    min_ns: 950_000,
                    flops: 1.9e7,
                },
            ],
        }
    }

    #[test]
    fn json_round_trip_is_identity() {
        let r = sample();
        let parsed = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn ratio_divides_medians() {
        let r = sample();
        let ratio = r
            .ratio("conv3x3_c64/reference", "conv3x3_c64/im2col")
            .unwrap();
        assert!((ratio - 4.2).abs() < 1e-12);
        assert_eq!(r.ratio("nope", "conv3x3_c64/im2col"), None);
    }

    #[test]
    fn shape_ignores_timings() {
        let mut a = sample();
        let b = sample();
        a.records[0].median_ns = 77;
        a.records[1].min_ns = 3;
        assert_eq!(a.shape(), b.shape());
    }

    #[test]
    fn strict_parser_rejects_schema_violations() {
        let bad = [
            // Not JSON at all.
            "nonsense",
            // Missing suite.
            r#"{"records":[]}"#,
            // Records not an array.
            r#"{"suite":"kernels","records":{}}"#,
            // Record missing a field.
            r#"{"suite":"k","records":[{"suite":"k","name":"a","warmup":0,"iters":1,"runs":1,"median_ns":1}]}"#,
            // Non-integer nanoseconds.
            r#"{"suite":"k","records":[{"suite":"k","name":"a","warmup":0,"iters":1,"runs":1,"median_ns":1.5,"min_ns":1,"flops":0}]}"#,
            // Suite mismatch between document and record.
            r#"{"suite":"k","records":[{"suite":"other","name":"a","warmup":0,"iters":1,"runs":1,"median_ns":1,"min_ns":1,"flops":0}]}"#,
        ];
        for text in bad {
            assert!(
                BenchReport::from_json(text).is_err(),
                "accepted invalid document: {text}"
            );
        }
    }

    #[test]
    fn escaped_names_survive_round_trip() {
        let r = BenchReport {
            suite: "e\"2e".into(),
            records: vec![BenchRecord {
                suite: "e\"2e".into(),
                name: "line\nbreak".into(),
                warmup: 0,
                iters: 1,
                runs: 1,
                median_ns: 1,
                min_ns: 1,
                flops: 0.0,
            }],
        };
        assert_eq!(BenchReport::from_json(&r.to_json()).unwrap(), r);
    }
}
