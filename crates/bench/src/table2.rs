//! Table II — "The execution cost of algorithms": wall-clock planning
//! time of the PICO heuristic versus the BFS optimal search across
//! (layers, devices) sizes. The paper's point is the combinatorial
//! explosion of BFS (sub-second PICO vs minutes/hours of BFS); a
//! per-cell wall-clock budget stands in for the paper's ">1h" cells.

use std::time::{Duration, Instant};

use pico_model::zoo;
use pico_partition::{BfsOptimal, Cluster, CostParams, Device, PicoPlanner, PlanRequest, Planner};

/// The paper's (layers, devices) grid.
pub const GRID: [(usize, usize); 8] = [
    (4, 4),
    (8, 4),
    (12, 4),
    (16, 4),
    (8, 6),
    (10, 6),
    (12, 6),
    (8, 8),
];

/// A heterogeneous cluster with pairwise-distinct capacities
/// (1.2 GHz, 1.15 GHz, ...). Distinct devices prevent the BFS search
/// from collapsing equal-capacity symmetry, reproducing the full
/// combinatorial blow-up the paper reports.
pub fn grid_cluster(devices: usize) -> Cluster {
    Cluster::new(
        (0..devices)
            .map(|i| Device::from_frequency(i, 1.2 - 0.05 * i as f64))
            .collect(),
    )
}

/// One grid cell of Table II.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Toy model depth.
    pub layers: usize,
    /// Cluster size.
    pub devices: usize,
    /// PICO heuristic planning time.
    pub pico: Duration,
    /// BFS search time (capped at the budget).
    pub bfs: Duration,
    /// Stage-set candidates BFS evaluated.
    pub bfs_evaluated: u64,
    /// Whether BFS hit the budget before finishing (the paper's ">1h").
    pub bfs_timed_out: bool,
}

/// Runs the grid with the given per-cell BFS budget.
pub fn run_with_budget(budget: Duration) -> Vec<Table2Row> {
    let params = CostParams::wifi_50mbps();
    GRID.iter()
        .map(|&(layers, devices)| {
            let model = zoo::toy(layers);
            let cluster = grid_cluster(devices);

            let t0 = Instant::now();
            let _ = PicoPlanner::new()
                .plan(&PlanRequest::new(&model, &cluster, &params))
                .expect("PICO plans");
            let pico = t0.elapsed();

            let outcome = BfsOptimal::with_budget(budget)
                .search(&model, &cluster, &params)
                .expect("BFS finds at least one candidate");
            Table2Row {
                layers,
                devices,
                pico,
                bfs: outcome.elapsed,
                bfs_evaluated: outcome.evaluated,
                bfs_timed_out: outcome.timed_out,
            }
        })
        .collect()
}

/// Runs the grid with the default budget (`PICO_BFS_BUDGET_SECS` env
/// var, default 30 s per cell).
pub fn run() -> Vec<Table2Row> {
    let secs = std::env::var("PICO_BFS_BUDGET_SECS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30.0);
    run_with_budget(Duration::from_secs_f64(secs))
}

/// Prints the table.
pub fn print(rows: &[Table2Row]) {
    println!("# Table II — planner wall-time, PICO (heuristic) vs BFS (optimal)");
    println!("layers,devices,pico_ms,bfs_ms,bfs_candidates,bfs_timed_out");
    for r in rows {
        println!(
            "{},{},{:.2},{:.1},{},{}",
            r.layers,
            r.devices,
            r.pico.as_secs_f64() * 1e3,
            r.bfs.as_secs_f64() * 1e3,
            r.bfs_evaluated,
            if r.bfs_timed_out {
                "yes (budget hit)"
            } else {
                "no"
            }
        );
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pico_is_subsecond_everywhere() {
        // "PICO (Heuristic): < 1s" for every grid cell.
        for r in run_with_budget(Duration::from_millis(300)) {
            assert!(
                r.pico < Duration::from_secs(1),
                "({}, {}): PICO took {:?}",
                r.layers,
                r.devices,
                r.pico
            );
        }
    }

    #[test]
    fn bfs_cost_explodes_with_size() {
        // The Table II trend: candidate count grows superlinearly in
        // layers and devices.
        let rows = run_with_budget(Duration::from_millis(500));
        let cell = |l: usize, d: usize| {
            rows.iter()
                .find(|r| r.layers == l && r.devices == d)
                .expect("cell present")
        };
        let small = cell(4, 4);
        let wide = cell(16, 4);
        let deep = cell(8, 6);
        assert!(
            wide.bfs_evaluated > small.bfs_evaluated * 8 || wide.bfs_timed_out,
            "layers: {} -> {}",
            small.bfs_evaluated,
            wide.bfs_evaluated
        );
        assert!(
            deep.bfs_evaluated > small.bfs_evaluated * 8 || deep.bfs_timed_out,
            "devices: {} -> {}",
            small.bfs_evaluated,
            deep.bfs_evaluated
        );
    }
}
