//! Table I — "The utilization and redundancy ratios among heterogeneous
//! devices with different parallel schemes": per-device utilization and
//! redundancy for VGG16 and YOLOv2 on the mixed 8-device cluster
//! (2x1.2 GHz + 2x800 MHz + 4x600 MHz), under LW / EFL / OFL / PICO.

use pico_model::{zoo, Model};
use pico_partition::{Cluster, CostParams, PlanRequest, Scheme};
use pico_sim::{Arrivals, DeviceStat, Simulation};

use crate::paper_planners;

/// One (model, scheme) row group: per-device stats plus averages.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Model name.
    pub model: String,
    /// Scheme.
    pub scheme: Scheme,
    /// Per-device stats, ascending device id (strongest devices first
    /// in the paper's cluster declaration).
    pub devices: Vec<DeviceStat>,
    /// Mean utilization over active devices.
    pub avg_utilization: f64,
    /// Busy-weighted mean redundancy.
    pub avg_redundancy: f64,
}

/// Runs the Table I measurement for one model.
pub fn run_for(model: &Model) -> Vec<Table1Row> {
    let cluster = Cluster::paper_heterogeneous();
    let params = CostParams::wifi_50mbps();
    let sim = Simulation::new(model, &cluster, &params);
    paper_planners()
        .into_iter()
        .filter_map(|(scheme, planner)| {
            let plan = planner
                .plan(&PlanRequest::new(model, &cluster, &params))
                .ok()?;
            let report = sim.run(&plan, &Arrivals::closed_loop(100));
            Some(Table1Row {
                model: model.name().to_owned(),
                scheme,
                avg_utilization: report.avg_utilization(),
                avg_redundancy: report.avg_redundancy(),
                devices: report.device_stats,
            })
        })
        .collect()
}

/// Runs Table I for both models.
pub fn run() -> Vec<Table1Row> {
    let mut rows = run_for(&zoo::vgg16().features());
    rows.extend(run_for(&zoo::yolov2()));
    rows
}

/// Prints the table.
pub fn print(rows: &[Table1Row]) {
    println!("# Table I — utilization/redundancy on 2x1.2GHz + 2x800MHz + 4x600MHz");
    println!("model,scheme,metric,d0,d1,d2,d3,d4,d5,d6,d7,average");
    for row in rows {
        let utils: Vec<String> = row
            .devices
            .iter()
            .map(|d| format!("{:.1}", 100.0 * d.utilization))
            .collect();
        let redus: Vec<String> = row
            .devices
            .iter()
            .map(|d| format!("{:.1}", 100.0 * d.redundancy))
            .collect();
        println!(
            "{},{},utilization_pct,{},{:.1}",
            row.model,
            row.scheme,
            utils.join(","),
            100.0 * row.avg_utilization
        );
        println!(
            "{},{},redundancy_pct,{},{:.1}",
            row.model,
            row.scheme,
            redus.join(","),
            100.0 * row.avg_redundancy
        );
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row<'a>(rows: &'a [Table1Row], model: &str, scheme: Scheme) -> &'a Table1Row {
        rows.iter()
            .find(|r| r.model.starts_with(model) && r.scheme == scheme)
            .unwrap_or_else(|| panic!("missing ({model},{scheme})"))
    }

    #[test]
    fn pico_has_best_utilization_with_low_redundancy() {
        let rows = run();
        for model in ["vgg16", "yolov2"] {
            let pico = row(&rows, model, Scheme::Pico);
            for s in [Scheme::LayerWise, Scheme::EarlyFused, Scheme::OptimalFused] {
                let other = row(&rows, model, s);
                assert!(
                    pico.avg_utilization > other.avg_utilization,
                    "{model}: PICO {:.3} vs {s} {:.3}",
                    pico.avg_utilization,
                    other.avg_utilization
                );
            }
            // PICO's redundancy stays below the fused baselines'.
            let efl = row(&rows, model, Scheme::EarlyFused);
            let ofl = row(&rows, model, Scheme::OptimalFused);
            assert!(pico.avg_redundancy < efl.avg_redundancy);
            assert!(pico.avg_redundancy < ofl.avg_redundancy);
        }
    }

    #[test]
    fn lw_has_minimal_redundancy_but_poor_utilization() {
        let rows = run();
        for model in ["vgg16", "yolov2"] {
            let lw = row(&rows, model, Scheme::LayerWise);
            assert!(lw.avg_redundancy < 0.05, "{model}: {}", lw.avg_redundancy);
            let pico = row(&rows, model, Scheme::Pico);
            assert!(lw.avg_utilization < pico.avg_utilization / 2.0);
        }
    }

    #[test]
    fn all_eight_devices_reported() {
        for r in run() {
            assert_eq!(r.devices.len(), 8, "{} {}", r.model, r.scheme);
            for d in &r.devices {
                assert!((0.0..=1.0).contains(&d.utilization));
                assert!((0.0..=1.0).contains(&d.redundancy));
            }
        }
    }
}
