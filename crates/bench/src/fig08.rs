//! Fig. 8 — "The cluster capacity when executing VGG16": inference
//! period per scheme versus device count at several CPU frequencies,
//! plus completed tasks per minute at 8 devices.

use pico_model::{zoo, Model};
use pico_partition::{PlanRequest, Scheme};
use pico_sim::{Arrivals, Simulation};

use crate::{cluster, paper_planners, DEVICE_COUNTS, FREQS_GHZ};

/// One (frequency, devices, scheme) sample of the capacity sweep.
#[derive(Debug, Clone)]
pub struct CapacityRow {
    /// CPU frequency in GHz.
    pub ghz: f64,
    /// Device count.
    pub devices: usize,
    /// Parallelization scheme.
    pub scheme: Scheme,
    /// Analytic pipeline period (s) — reciprocal throughput.
    pub period: f64,
    /// Simulated completed tasks per minute (closed loop).
    pub tasks_per_min: f64,
}

/// Runs the capacity sweep for one model.
pub fn run_for(model: &Model) -> Vec<CapacityRow> {
    let params = pico_partition::CostParams::wifi_50mbps();
    let mut rows = Vec::new();
    for ghz in FREQS_GHZ {
        for devices in DEVICE_COUNTS {
            let c = cluster(devices, ghz);
            for (scheme, planner) in paper_planners() {
                let Ok(plan) = planner.plan(&PlanRequest::new(model, &c, &params)) else {
                    continue;
                };
                let metrics = params.cost_model(model).evaluate(&plan, &c);
                let sim = Simulation::new(model, &c, &params);
                let report = sim.run(&plan, &Arrivals::closed_loop(60));
                rows.push(CapacityRow {
                    ghz,
                    devices,
                    scheme,
                    period: metrics.period,
                    tasks_per_min: 60.0 * report.throughput,
                });
            }
        }
    }
    rows
}

/// The VGG16 sweep (Fig. 8).
pub fn run() -> Vec<CapacityRow> {
    run_for(&zoo::vgg16().features())
}

/// Prints a capacity sweep as CSV.
pub fn print(title: &str, rows: &[CapacityRow]) {
    println!("# {title}");
    println!("ghz,devices,scheme,period_s,tasks_per_min");
    for r in rows {
        println!(
            "{},{},{},{:.4},{:.2}",
            r.ghz, r.devices, r.scheme, r.period, r.tasks_per_min
        );
    }
    println!();
}

/// Shape assertions shared by the Fig. 8 / Fig. 9 tests.
#[cfg(test)]
pub(crate) fn assert_capacity_shape(rows: &[CapacityRow]) {
    let find = |ghz: f64, d: usize, s: Scheme| {
        rows.iter()
            .find(|r| r.ghz == ghz && r.devices == d && r.scheme == s)
            .unwrap_or_else(|| panic!("missing ({ghz},{d},{s})"))
    };
    // At 8 devices, PICO has the highest throughput at every frequency.
    for ghz in FREQS_GHZ {
        let pico = find(ghz, 8, Scheme::Pico).tasks_per_min;
        for s in [Scheme::LayerWise, Scheme::EarlyFused, Scheme::OptimalFused] {
            assert!(
                pico > find(ghz, 8, s).tasks_per_min,
                "{ghz} GHz: PICO {pico} not above {s}"
            );
        }
        // Paper headline: throughput improved 1.8-6.2x under various
        // settings; we require >=1.8x over EFL (the paper's capacity
        // reference) and a clear margin over the strong OFL baseline.
        let efl = find(ghz, 8, Scheme::EarlyFused).tasks_per_min;
        let ofl = find(ghz, 8, Scheme::OptimalFused).tasks_per_min;
        assert!(pico / efl > 1.8, "{ghz} GHz: PICO/EFL {}", pico / efl);
        assert!(pico / ofl > 1.2, "{ghz} GHz: PICO/OFL {}", pico / ofl);
    }
    // PICO period shrinks (weakly) as devices grow.
    for ghz in FREQS_GHZ {
        let periods: Vec<f64> = DEVICE_COUNTS
            .iter()
            .map(|d| find(ghz, *d, Scheme::Pico).period)
            .collect();
        for w in periods.windows(2) {
            assert!(w[1] <= w[0] * 1.02, "period grew: {periods:?}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vgg16_capacity_shape() {
        assert_capacity_shape(&run());
    }
}
