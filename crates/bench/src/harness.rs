//! A dependency-free micro-benchmark harness.
//!
//! The workspace keeps its measurement path free of external crates, so
//! kernel/planner timings come from [`std::time::Instant`] (monotonic by
//! contract) under a fixed protocol: `warmup` unmeasured iterations,
//! then `runs` timed runs of `iters` iterations each, reporting the
//! **median** per-iteration time across runs (robust to a stray
//! scheduler hiccup) alongside the minimum (the least-disturbed run).
//!
//! Wall-clock numbers vary between machines and reruns; everything
//! downstream (the CI gate, `EXPERIMENTS.md`) therefore compares
//! **ratios** between records measured in the same process, never
//! absolute nanoseconds. The *structure* of a report — suite name,
//! record names, protocol fields — is deterministic and is what the
//! golden-shape tests pin down.

use std::time::Instant;

/// The fixed measurement protocol: how many unmeasured warmup
/// iterations, how many iterations per timed run, and how many runs the
/// median is taken over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchConfig {
    /// Unmeasured iterations before timing starts (fills caches and the
    /// scratch pool, so steady state is what gets measured).
    pub warmup: usize,
    /// Iterations per timed run.
    pub iters: usize,
    /// Timed runs; the reported time is their median.
    pub runs: usize,
}

impl BenchConfig {
    /// Creates a protocol.
    ///
    /// # Panics
    ///
    /// Panics if `iters` or `runs` is zero.
    pub fn new(warmup: usize, iters: usize, runs: usize) -> Self {
        assert!(iters > 0, "iters must be positive");
        assert!(runs > 0, "runs must be positive");
        BenchConfig {
            warmup,
            iters,
            runs,
        }
    }

    /// A fast protocol for smoke tests and CI: 1 warmup, 3 iterations,
    /// 3 runs.
    pub fn quick() -> Self {
        BenchConfig::new(1, 3, 3)
    }

    /// Returns this protocol with a different per-run iteration count.
    pub fn with_iters(mut self, iters: usize) -> Self {
        assert!(iters > 0, "iters must be positive");
        self.iters = iters;
        self
    }

    /// Returns this protocol with a different run count.
    pub fn with_runs(mut self, runs: usize) -> Self {
        assert!(runs > 0, "runs must be positive");
        self.runs = runs;
        self
    }

    /// Returns this protocol with a different warmup count.
    pub fn with_warmup(mut self, warmup: usize) -> Self {
        self.warmup = warmup;
        self
    }
}

impl Default for BenchConfig {
    /// The offline default: 2 warmups, 10 iterations, 5 runs.
    fn default() -> Self {
        BenchConfig::new(2, 10, 5)
    }
}

/// One benchmark's result under a [`BenchConfig`] protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Suite the record belongs to (`kernels`, `planner`, `e2e`).
    pub suite: String,
    /// Case name, `<case>/<variant>` by convention.
    pub name: String,
    /// Warmup iterations that preceded measurement.
    pub warmup: usize,
    /// Iterations per timed run.
    pub iters: usize,
    /// Timed runs the median was taken over.
    pub runs: usize,
    /// Median per-iteration time across runs, in nanoseconds.
    pub median_ns: u64,
    /// Fastest run's per-iteration time, in nanoseconds.
    pub min_ns: u64,
    /// Floating-point operations one iteration performs (0 when not
    /// meaningful, e.g. planner timings).
    pub flops: f64,
}

impl BenchRecord {
    /// Throughput in GFLOP/s at the median time (0 when `flops` is 0 or
    /// the measured time is below clock resolution).
    pub fn gflops(&self) -> f64 {
        if self.flops > 0.0 && self.median_ns > 0 {
            self.flops / self.median_ns as f64
        } else {
            0.0
        }
    }
}

/// Times `f` under `cfg` and returns its record.
///
/// The closure runs `cfg.warmup + cfg.runs * cfg.iters` times in
/// total. Per-iteration times are whole-run elapsed time divided by
/// `iters`, so per-call clock overhead stays out of the figure.
pub fn bench<F: FnMut()>(
    suite: &str,
    name: &str,
    cfg: BenchConfig,
    flops: f64,
    mut f: F,
) -> BenchRecord {
    for _ in 0..cfg.warmup {
        f();
    }
    let mut per_iter: Vec<u64> = Vec::with_capacity(cfg.runs);
    for _ in 0..cfg.runs {
        let start = Instant::now();
        for _ in 0..cfg.iters {
            f();
        }
        let elapsed = start.elapsed().as_nanos() / cfg.iters as u128;
        // A single run cannot realistically reach u64::MAX nanoseconds
        // (~584 years); saturate rather than truncate regardless.
        per_iter.push(u64::try_from(elapsed).unwrap_or(u64::MAX));
    }
    per_iter.sort_unstable();
    let min_ns = per_iter[0];
    // Median: middle element, or the mean of the two middles.
    let mid = per_iter.len() / 2;
    let median_ns = if per_iter.len() % 2 == 1 {
        per_iter[mid]
    } else {
        per_iter[mid - 1] / 2 + per_iter[mid] / 2 + (per_iter[mid - 1] % 2 + per_iter[mid] % 2) / 2
    };
    BenchRecord {
        suite: suite.to_string(),
        name: name.to_string(),
        warmup: cfg.warmup,
        iters: cfg.iters,
        runs: cfg.runs,
        median_ns,
        min_ns,
        flops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_counts_every_iteration() {
        let mut calls = 0usize;
        let cfg = BenchConfig::new(2, 3, 4);
        let rec = bench("t", "count", cfg, 0.0, || calls += 1);
        assert_eq!(calls, 2 + 3 * 4);
        assert_eq!(rec.suite, "t");
        assert_eq!(rec.name, "count");
        assert_eq!((rec.warmup, rec.iters, rec.runs), (2, 3, 4));
        assert!(rec.min_ns <= rec.median_ns);
    }

    #[test]
    fn median_is_robust_to_one_slow_run() {
        // 5 runs where one is artificially slow: the median must sit
        // near the fast runs, i.e. strictly below the slowest run's
        // per-iteration time.
        let mut run = 0usize;
        let cfg = BenchConfig::new(0, 1, 5);
        let rec = bench("t", "spike", cfg, 0.0, || {
            run += 1;
            if run == 3 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
        });
        assert!(rec.median_ns < 20_000_000, "median absorbed the spike");
    }

    #[test]
    fn gflops_uses_median() {
        let rec = BenchRecord {
            suite: "t".into(),
            name: "g".into(),
            warmup: 0,
            iters: 1,
            runs: 1,
            median_ns: 100,
            min_ns: 90,
            flops: 1_000.0,
        };
        assert!((rec.gflops() - 10.0).abs() < 1e-12);
        let zero = BenchRecord { flops: 0.0, ..rec };
        assert_eq!(zero.gflops(), 0.0);
    }

    #[test]
    #[should_panic(expected = "iters must be positive")]
    fn zero_iters_rejected() {
        BenchConfig::new(0, 0, 1);
    }
}
