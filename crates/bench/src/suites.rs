//! The three offline bench suites behind `pico bench`: compute
//! kernels, planners, and end-to-end inference.
//!
//! Every suite is deterministic in *structure* — same case names, same
//! order, same protocol fields on every rerun — so reports can be
//! diffed and gated on ratios between records. The kernel suite runs
//! each case under **every** [`EngineBackend`] (plus a multi-threaded
//! `simd_mt4` row for the gate case); the `conv3x3_c64/reference` vs
//! `conv3x3_c64/simd` pair is the CI speedup gate, and
//! `conv3x3_c64/simd` vs `conv3x3_c64/simd_mt4` the thread-scaling
//! smoke (enforced only on hosts with ≥ 4 cores).

use pico_model::{zoo, ConvSpec, Layer, Model, PoolSpec, Region2, Rows, Shape};
use pico_partition::{Cluster, CostParams, PlanRequest};
use pico_tensor::{Engine, EngineBackend, Scratch, Tensor};

use crate::harness::{bench, BenchConfig, BenchRecord};
use crate::report::BenchReport;

/// The kernel case the CI speedup gate compares across backends.
pub const GATE_CASE: &str = "conv3x3_c64";

/// The nominal device capacity (cycles/s) calibration fits against — a
/// 1 GHz core, the middle of the paper's Pi frequency range.
pub const CALIBRATION_CAPACITY: f64 = 1e9;

/// One single-layer model per kernel shape the reproduction leans on.
///
/// Input maps are 16×16 — big enough that the GEMM's register tiling
/// engages (n = 256 pixels), small enough that `--iters 3` smoke runs
/// stay fast.
fn kernel_cases() -> Vec<(&'static str, Model)> {
    let conv = |name, spec| {
        let m = Model::new(
            name,
            conv_input(&spec),
            vec![Layer::conv(name, spec).into()],
        )
        .expect("static bench case is well-formed");
        (name, m)
    };
    vec![
        // The gate case: a dense 3×3 convolution at 64 channels, the
        // bread-and-butter layer of VGG-class models.
        conv(GATE_CASE, ConvSpec::square(64, 64, 3, 1, 1)),
        conv("conv3x3_c16", ConvSpec::square(16, 16, 3, 1, 1)),
        conv("conv1x1_c64", ConvSpec::pointwise(64, 64)),
        conv("conv3x3_s2_c32", ConvSpec::square(32, 32, 3, 2, 1)),
        conv("dw3x3_c32", ConvSpec::depthwise(32, 3, 1, 1)),
        (
            "pool2x2_c32",
            Model::new(
                "pool2x2_c32",
                Shape::new(32, 16, 16),
                vec![Layer::pool("pool2x2_c32", PoolSpec::max(2, 2)).into()],
            )
            .expect("static bench case is well-formed"),
        ),
        (
            "fc_2048x256",
            Model::new(
                "fc_2048x256",
                Shape::new(32, 8, 8),
                vec![Layer::fc("fc_2048x256", 32 * 8 * 8, 256).into()],
            )
            .expect("static bench case is well-formed"),
        ),
    ]
}

fn conv_input(spec: &ConvSpec) -> Shape {
    Shape::new(spec.in_channels, 16, 16)
}

/// Measures one engine's full-map inference of `model` under `cfg`,
/// recycling the output buffer so the fast backend is timed at its
/// zero-allocation steady state.
fn bench_model(
    suite: &str,
    name: &str,
    cfg: BenchConfig,
    model: &Model,
    backend: EngineBackend,
) -> BenchRecord {
    bench_model_threads(suite, name, cfg, model, backend, 1)
}

/// [`bench_model`] with an explicit worker-thread count, used for the
/// `simd_mt4` thread-scaling row.
fn bench_model_threads(
    suite: &str,
    name: &str,
    cfg: BenchConfig,
    model: &Model,
    backend: EngineBackend,
    threads: usize,
) -> BenchRecord {
    let engine = Engine::with_seed(model, 11)
        .with_backend(backend)
        .with_threads(threads);
    let input = Tensor::random(model.input_shape(), 17);
    let seg = model.full_segment();
    let out = model.output_shape();
    let region = Region2::full(out.height, out.width);
    let mut scratch = Scratch::new();
    bench(suite, name, cfg, model.total_flops(), || {
        let t = engine
            .infer_region2_with(&mut scratch, seg, region, &input)
            .expect("bench case infers");
        scratch.give(t.into_vec());
    })
}

/// Worker threads used by the `simd_mt4` thread-scaling row.
pub const SCALING_THREADS: usize = 4;

/// The kernel suite: every case in [`kernel_cases`] under every
/// backend, named `<case>/<backend>`, plus one multi-threaded
/// `<gate>/simd_mt4` row for the thread-scaling smoke.
pub fn kernels(cfg: BenchConfig) -> BenchReport {
    let mut report = BenchReport::new("kernels");
    for (case, model) in kernel_cases() {
        for backend in EngineBackend::ALL {
            let name = format!("{case}/{backend}");
            report
                .records
                .push(bench_model("kernels", &name, cfg, &model, backend));
        }
        if case == GATE_CASE {
            let name = format!("{case}/simd_mt{SCALING_THREADS}");
            report.records.push(bench_model_threads(
                "kernels",
                &name,
                cfg,
                &model,
                EngineBackend::Simd,
                SCALING_THREADS,
            ));
        }
    }
    report
}

/// Reference-over-fast median ratio for `case` (how many times faster
/// the scalar `Im2colGemm` backend ran it).
pub fn backend_speedup(report: &BenchReport, case: &str) -> Option<f64> {
    report.ratio(
        &format!("{case}/{}", EngineBackend::Reference),
        &format!("{case}/{}", EngineBackend::Im2colGemm),
    )
}

/// Reference-over-SIMD median ratio for `case` — the CI `--gate-ratio`
/// metric (how many times faster the vectorized backend ran it).
pub fn simd_speedup(report: &BenchReport, case: &str) -> Option<f64> {
    report.ratio(
        &format!("{case}/{}", EngineBackend::Reference),
        &format!("{case}/{}", EngineBackend::Simd),
    )
}

/// Single-thread-over-[`SCALING_THREADS`] SIMD median ratio for `case`
/// — the CI `--scaling-gate` metric. `None` unless the suite benched a
/// `<case>/simd_mt4` row (only the gate case gets one).
pub fn thread_scaling(report: &BenchReport, case: &str) -> Option<f64> {
    report.ratio(
        &format!("{case}/{}", EngineBackend::Simd),
        &format!("{case}/simd_mt{SCALING_THREADS}"),
    )
}

/// Measured `backend_alpha` for `backend` on `case`: its median runtime
/// over the scalar `Im2colGemm` median that `alpha_scale` calibration
/// fits against. Feed the result to [`CostParams::with_backend_speedup`]
/// inverted, or set `params.backend_alpha` directly.
pub fn measured_backend_alpha(
    report: &BenchReport,
    case: &str,
    backend: EngineBackend,
) -> Option<f64> {
    report.ratio(
        &format!("{case}/{backend}"),
        &format!("{case}/{}", EngineBackend::Im2colGemm),
    )
}

/// The planner suite: each paper planner planning VGG16 and the toy
/// model on an 8-device Pi cluster (`plan_<model>/<planner>`, `flops`
/// 0 — planning does no tensor arithmetic).
pub fn planner(cfg: BenchConfig) -> BenchReport {
    let mut report = BenchReport::new("planner");
    let cluster = Cluster::pi_cluster(8, 1.0);
    let params = CostParams::wifi_50mbps();
    for (model_name, model) in [("toy8", zoo::toy(8)), ("vgg16", zoo::vgg16().features())] {
        for (scheme, planner) in crate::paper_planners() {
            let name = format!("plan_{model_name}/{scheme:?}");
            report.records.push(bench("planner", &name, cfg, 0.0, || {
                planner
                    .plan(&PlanRequest::new(&model, &cluster, &params))
                    .expect("paper planner plans its own benchmark");
            }));
        }
    }
    report
}

/// The end-to-end suite: whole-model inference of the MNIST-sized toy
/// under both backends, plus a 4-way split → compute → stitch pass
/// exercising the halo path the runtime takes.
pub fn e2e(cfg: BenchConfig) -> BenchReport {
    let mut report = BenchReport::new("e2e");
    let model = zoo::mnist_toy();
    for backend in EngineBackend::ALL {
        let name = format!("mnist_toy/{backend}");
        report
            .records
            .push(bench_model("e2e", &name, cfg, &model, backend));
    }
    let engine = Engine::with_seed(&model, 11);
    let input = Tensor::random(model.input_shape(), 17);
    let seg = model.full_segment();
    let h = model.output_shape().height;
    let shares = pico_model::rows_split_even(Rows::full(h), 4);
    let mut scratch = Scratch::new();
    report.records.push(bench(
        "e2e",
        "mnist_toy_split4/im2col",
        cfg,
        model.total_flops(),
        || {
            let tiles: Vec<Tensor> = shares
                .iter()
                .map(|&r| {
                    let need = model.segment_input_rows(seg, r);
                    let tile = input.slice_rows(need).expect("share is in range");
                    engine
                        .infer_region(seg, r, &tile)
                        .expect("bench case infers")
                })
                .collect();
            let stitched = Tensor::stitch_rows(&tiles).expect("tiles stitch");
            for t in tiles {
                scratch.give(t.into_vec());
            }
            scratch.give(stitched.into_vec());
        },
    ));
    report
}

/// Runs the kernel suite and fits [`CostParams::calibrated`] from its
/// fast-backend convolution records, returning the fitted parameters
/// alongside the `(flops, seconds)` samples used.
///
/// This is how `alpha_scale` values quoted in `EXPERIMENTS.md` are
/// produced: measure, fit, plan with the result.
pub fn calibration(report: &BenchReport) -> (CostParams, Vec<(f64, f64)>) {
    let samples: Vec<(f64, f64)> = report
        .records
        .iter()
        .filter(|r| r.flops > 0.0 && r.name.ends_with("/im2col") && r.name.starts_with("conv"))
        .map(|r| (r.flops, r.median_ns as f64 * 1e-9))
        .collect();
    (
        CostParams::wifi_50mbps().calibrated(CALIBRATION_CAPACITY, &samples),
        samples,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_suite_covers_every_case_under_every_backend() {
        let report = kernels(BenchConfig::new(0, 1, 1));
        assert_eq!(report.suite, "kernels");
        // One row per (case, backend) pair plus the simd_mt4 gate row.
        assert_eq!(
            report.records.len(),
            kernel_cases().len() * EngineBackend::ALL.len() + 1
        );
        for (case, _) in kernel_cases() {
            for b in EngineBackend::ALL {
                assert!(
                    report.record(&format!("{case}/{b}")).is_some(),
                    "missing {case}/{b}"
                );
            }
        }
        assert!(report
            .record(&format!("{GATE_CASE}/simd_mt{SCALING_THREADS}"))
            .is_some());
        assert!(backend_speedup(&report, GATE_CASE).is_some());
        assert!(simd_speedup(&report, GATE_CASE).is_some());
        assert!(thread_scaling(&report, GATE_CASE).is_some());
        let alpha = measured_backend_alpha(&report, GATE_CASE, EngineBackend::Simd);
        assert!(alpha.is_some_and(|a| a > 0.0 && a.is_finite()));
    }

    #[test]
    fn suite_structure_is_deterministic_across_reruns() {
        let cfg = BenchConfig::new(0, 1, 1);
        assert_eq!(kernels(cfg).shape(), kernels(cfg).shape());
        assert_eq!(e2e(cfg).shape(), e2e(cfg).shape());
    }

    #[test]
    fn planner_suite_times_all_paper_planners() {
        let report = planner(BenchConfig::new(0, 1, 1));
        assert_eq!(report.records.len(), 2 * crate::paper_planners().len());
        assert!(report.records.iter().all(|r| r.flops == 0.0));
    }

    #[test]
    fn calibration_fits_positive_coefficient_from_conv_records() {
        let report = kernels(BenchConfig::new(1, 2, 3));
        let (params, samples) = calibration(&report);
        assert!(!samples.is_empty());
        assert!(params.alpha_scale > 0.0 && params.alpha_scale.is_finite());
    }
}
