//! Fig. 2 — "The communication and computation overhead of each layer"
//! for VGG16 and YOLOv2: per-layer FLOPs share and output-traffic share.

use pico_model::profile::{conv_flops_share, layer_profile, UnitProfile};
use pico_model::{zoo, Model};

/// The Fig. 2 data for one model.
#[derive(Debug, Clone)]
pub struct Fig02 {
    /// Model name.
    pub model: String,
    /// Per-unit profile rows, model order.
    pub rows: Vec<UnitProfile>,
    /// Fraction of total FLOPs coming from convolutions (the paper's
    /// 99.19% / 99.59% observation).
    pub conv_share: f64,
}

/// Profiles one model.
pub fn run_model(model: &Model) -> Fig02 {
    Fig02 {
        model: model.name().to_owned(),
        rows: layer_profile(model),
        conv_share: conv_flops_share(model),
    }
}

/// Profiles both Fig. 2 models (VGG16 incl. FC layers, YOLOv2).
pub fn run() -> Vec<Fig02> {
    vec![run_model(&zoo::vgg16()), run_model(&zoo::yolov2())]
}

/// Prints the Fig. 2 series as CSV-ish text.
pub fn print(results: &[Fig02]) {
    for fig in results {
        println!(
            "# Fig. 2 ({}) — conv FLOPs share {:.2}%",
            fig.model,
            100.0 * fig.conv_share
        );
        println!("layer,name,computation_share,communication_share");
        for r in &fig.rows {
            println!(
                "{},{},{:.4},{:.4}",
                r.index, r.name, r.flops_share, r.comm_share
            );
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shares_match_paper() {
        let results = run();
        // Paper: 99.19% (VGG16) and 99.59% (YOLOv2).
        assert!(
            (results[0].conv_share - 0.9919).abs() < 0.01,
            "{}",
            results[0].conv_share
        );
        assert!(results[1].conv_share > 0.99, "{}", results[1].conv_share);
    }

    #[test]
    fn early_layers_dominate_communication() {
        // Fig. 2's visual: communication share concentrates in early
        // (large-feature-map) layers, computation in the middle/late
        // conv layers.
        let vgg = &run()[0];
        let first_half_comm: f64 = vgg.rows[..vgg.rows.len() / 2]
            .iter()
            .map(|r| r.comm_share)
            .sum();
        assert!(first_half_comm > 0.8, "{first_half_comm}");
    }
}
