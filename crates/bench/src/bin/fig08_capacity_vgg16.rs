//! Regenerates Fig. 8: cluster capacity for VGG16.
fn main() {
    pico_bench::fig08::print(
        "Fig. 8 — cluster capacity, VGG16",
        &pico_bench::fig08::run(),
    );
}
