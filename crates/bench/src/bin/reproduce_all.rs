//! Regenerates every table and figure of the paper in one run.
//! Output is the concatenation of all per-experiment CSV blocks.
fn main() {
    pico_bench::fig02::print(&pico_bench::fig02::run());
    pico_bench::fig04::print(&pico_bench::fig04::run());
    pico_bench::fig08::print(
        "Fig. 8 — cluster capacity, VGG16",
        &pico_bench::fig08::run(),
    );
    pico_bench::fig09::print(
        "Fig. 9 — cluster capacity, YOLOv2",
        &pico_bench::fig09::run(),
    );
    pico_bench::fig10::print(
        "Fig. 10 — avg latency vs workload, VGG16",
        &pico_bench::fig10::run(),
    );
    let rows11 = pico_bench::fig11::run();
    pico_bench::fig11::print("Fig. 11a — avg latency vs workload, YOLOv2", &rows11);
    println!("# Fig. 11b — latency at 100% workload");
    for r in pico_bench::fig11::breakdown_at_full_load(&rows11) {
        println!("{},{},{:.3}", r.ghz, r.scheme, r.avg_latency);
    }
    println!();
    pico_bench::fig12::print(&pico_bench::fig12::run());
    pico_bench::table1::print(&pico_bench::table1::run());
    pico_bench::table2::print(&pico_bench::table2::run());
    pico_bench::fig13::print(&pico_bench::fig13::run());
}
