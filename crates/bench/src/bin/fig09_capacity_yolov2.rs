//! Regenerates Fig. 9: cluster capacity for YOLOv2.
fn main() {
    pico_bench::fig09::print(
        "Fig. 9 — cluster capacity, YOLOv2",
        &pico_bench::fig09::run(),
    );
}
