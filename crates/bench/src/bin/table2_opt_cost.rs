//! Regenerates Table II: PICO vs BFS planner wall-time.
//! Set `PICO_BFS_BUDGET_SECS` to change the per-cell BFS budget.
fn main() {
    pico_bench::table2::print(&pico_bench::table2::run());
}
