//! Regenerates Fig. 4: fused-layer FLOPs vs devices and fused layers.
fn main() {
    pico_bench::fig04::print(&pico_bench::fig04::run());
}
