//! Regenerates Table I: per-device utilization/redundancy.
fn main() {
    pico_bench::table1::print(&pico_bench::table1::run());
}
