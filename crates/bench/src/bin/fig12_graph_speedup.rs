//! Regenerates Fig. 12: speedup for graph-based CNNs.
fn main() {
    pico_bench::fig12::print(&pico_bench::fig12::run());
}
