//! Regenerates Fig. 11: average latency vs workload for YOLOv2.
fn main() {
    let rows = pico_bench::fig11::run();
    pico_bench::fig11::print("Fig. 11a — avg latency vs workload, YOLOv2", &rows);
    println!("# Fig. 11b — latency at 100% workload");
    for r in pico_bench::fig11::breakdown_at_full_load(&rows) {
        println!("{},{},{:.3}", r.ghz, r.scheme, r.avg_latency);
    }
}
