//! Regenerates Fig. 10: average latency vs workload for VGG16.
fn main() {
    pico_bench::fig10::print(
        "Fig. 10 — avg latency vs workload, VGG16",
        &pico_bench::fig10::run(),
    );
}
