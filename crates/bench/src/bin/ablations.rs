//! Runs the ablation studies (beyond the paper's evaluation): share
//! balancing, bandwidth sweep, T_lim trade-off, strip-vs-grid
//! partitioning, and per-scheme memory footprints.
fn main() {
    pico_bench::ablation::print_all();
}
