//! Regenerates Fig. 2: per-layer communication/computation shares.
fn main() {
    pico_bench::fig02::print(&pico_bench::fig02::run());
}
