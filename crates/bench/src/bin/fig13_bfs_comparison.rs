//! Regenerates Fig. 13: PICO vs BFS utilization/redundancy.
fn main() {
    pico_bench::fig13::print(&pico_bench::fig13::run());
}
