//! Property-based tests for the model crate's interval arithmetic and
//! cost accounting — the foundations every planner builds on.

use pico_model::{
    rows_split_even, rows_split_weighted, zoo, ConvSpec, Layer, Model, PoolSpec, Rows, Segment,
    Shape,
};
use proptest::prelude::*;

/// A random small conv/pool chain with consistent channels. Kernels are
/// never smaller than strides (`k >= s`), matching real CNNs — `k < s`
/// layers read their input with gaps, which breaks interval-hull
/// reasoning by design.
fn arb_chain() -> impl Strategy<Value = Model> {
    let layer = prop_oneof![
        (1usize..=5, 1usize..=2, 0usize..=2).prop_map(|(k, s, p)| (k.max(s), s, p, true)),
        (2usize..=3, 1usize..=2).prop_map(|(k, s)| (k, s, 0usize, false)),
    ];
    proptest::collection::vec(layer, 1..6).prop_map(|specs| {
        let input = Shape::new(3, 64, 64);
        let mut units: Vec<pico_model::Unit> = Vec::new();
        let mut shape = input;
        for (i, (k, s, p, is_conv)) in specs.into_iter().enumerate() {
            let layer = if is_conv {
                let out_ch = 4 + (i % 3) * 4;
                Layer::conv(
                    format!("c{i}"),
                    ConvSpec::square(shape.channels, out_ch, k, s, p),
                )
            } else {
                Layer::pool(format!("p{i}"), PoolSpec::max(k, s))
            };
            // Skip layers the shrinking feature map can no longer fit.
            match layer.output_shape(shape) {
                Ok(next) if next.height >= 1 && next.width >= 1 => {
                    shape = next;
                    units.push(layer.into());
                }
                _ => {}
            }
        }
        if units.is_empty() {
            units.push(Layer::conv("fallback", ConvSpec::square(3, 4, 3, 1, 1)).into());
        }
        Model::new("prop", input, units).expect("chain is consistent")
    })
}

proptest! {
    /// Back-propagated input rows of a larger output range contain those
    /// of a smaller one (receptive fields are monotone).
    #[test]
    fn receptive_field_monotone(m in arb_chain(), a in 0usize..32, b in 0usize..32, c in 0usize..8) {
        let h = m.output_shape().height;
        let (x, y) = (a % h, b % h);
        let (lo, hi) = (x.min(y), x.max(y) + 1);
        let inner = Rows::new(lo, hi.min(h).max(lo));
        let outer = Rows::new(lo.saturating_sub(c), (hi + c).min(h)).clamp_to(h);
        let seg = m.full_segment();
        prop_assert!(m.segment_input_rows(seg, outer).contains(m.segment_input_rows(seg, inner)));
    }

    /// The receptive field of the full output starts at row 0 and stays
    /// inside the input map. (It may legitimately stop short of the last
    /// input row when stride arithmetic leaves unused bottom rows.)
    #[test]
    fn full_output_receptive_field_in_bounds(m in arb_chain()) {
        let seg = m.full_segment();
        let h_out = m.output_shape().height;
        let h_in = m.input_shape().height;
        let field = m.segment_input_rows(seg, Rows::full(h_out));
        prop_assert_eq!(field.start, 0);
        prop_assert!(field.end <= h_in);
        prop_assert!(!field.is_empty());
    }

    /// Splitting the output across devices always costs at least as much
    /// as computing it once (halo redundancy is non-negative), and each
    /// device costs no more than the whole segment.
    #[test]
    fn partition_flops_superadditive(m in arb_chain(), parts in 1usize..6) {
        let seg = m.full_segment();
        let h = m.output_shape().height;
        let chunks = rows_split_even(Rows::full(h), parts);
        let split_total: f64 = chunks.iter().map(|r| m.segment_flops(seg, *r)).sum();
        // Compare against the lazy full trace (only rows the output
        // actually depends on), not segment_total_flops: a monolithic
        // pass may compute bottom rows that strided layers never read.
        let mono = m.segment_flops(seg, Rows::full(h));
        prop_assert!(split_total >= mono - 1e-6,
            "split {split_total} < monolithic {mono}");
        for r in &chunks {
            prop_assert!(m.segment_flops(seg, *r) <= mono + 1e-6);
        }
    }

    /// Chained back-propagation through two sub-segments equals
    /// back-propagation through their concatenation.
    #[test]
    fn segment_composition(m in arb_chain(), cut in 0usize..6, lo in 0usize..16, len in 1usize..16) {
        prop_assume!(m.len() >= 2);
        let cut = 1 + cut % (m.len() - 1);
        let h = m.output_shape().height;
        let rows = Rows::new(lo % h, ((lo % h) + len).min(h));
        prop_assume!(!rows.is_empty());
        let full = m.segment_input_rows(m.full_segment(), rows);
        let mid = m.segment_input_rows(Segment::new(cut, m.len()), rows);
        let composed = m.segment_input_rows(Segment::new(0, cut), mid);
        prop_assert_eq!(full, composed);
    }

    /// Even splits cover the range exactly, contiguously, in order.
    #[test]
    fn split_even_partitions(start in 0usize..50, len in 0usize..200, parts in 1usize..10) {
        let rows = Rows::new(start, start + len);
        let chunks = rows_split_even(rows, parts);
        prop_assert_eq!(chunks.len(), parts);
        prop_assert_eq!(chunks[0].start, rows.start);
        prop_assert_eq!(chunks[parts - 1].end, rows.end);
        for w in chunks.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
        let sizes: Vec<usize> = chunks.iter().map(Rows::len).collect();
        prop_assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    /// Weighted splits cover the range exactly and roughly follow the
    /// weights (within one row of the ideal share).
    #[test]
    fn split_weighted_partitions(
        start in 0usize..50,
        len in 0usize..200,
        weights in proptest::collection::vec(0.01f64..10.0, 1..8),
    ) {
        let rows = Rows::new(start, start + len);
        let chunks = rows_split_weighted(rows, &weights);
        prop_assert_eq!(chunks.len(), weights.len());
        prop_assert_eq!(chunks[0].start, rows.start);
        prop_assert_eq!(chunks.last().unwrap().end, rows.end);
        for w in chunks.windows(2) {
            prop_assert_eq!(w[0].end, w[1].start);
        }
        let total: f64 = weights.iter().sum();
        for (chunk, w) in chunks.iter().zip(&weights) {
            let ideal = len as f64 * w / total;
            prop_assert!((chunk.len() as f64 - ideal).abs() <= 1.0 + 1e-9);
        }
    }

    /// Rows interval algebra: intersection is contained in both, hull
    /// contains both.
    #[test]
    fn rows_algebra(a in 0usize..100, b in 0usize..100, c in 0usize..100, d in 0usize..100) {
        let r1 = Rows::new(a.min(b), a.max(b));
        let r2 = Rows::new(c.min(d), c.max(d));
        let i = r1.intersect(r2);
        let h = r1.hull(r2);
        prop_assert!(r1.contains(i) && r2.contains(i));
        prop_assert!(h.contains(r1) && h.contains(r2));
        prop_assert_eq!(i.len() + h.len() >= r1.len() + r2.len(), true);
    }
}

#[test]
fn zoo_models_survive_random_region_queries() {
    // Deterministic spot-check over the real zoo (cheap smoke, not proptest,
    // because building InceptionV3 per-case would dominate runtime).
    for m in [
        zoo::vgg16().features(),
        zoo::yolov2(),
        zoo::resnet34().features(),
    ] {
        let h = m.output_shape().height;
        for parts in [1, 3, 8] {
            let chunks = rows_split_even(Rows::full(h), parts);
            let total: f64 = chunks
                .iter()
                .map(|r| m.segment_flops(m.full_segment(), *r))
                .sum();
            assert!(total >= m.total_flops() - 1.0, "{}", m.name());
        }
    }
}
