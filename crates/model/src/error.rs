/// Errors raised while constructing or analysing a model.
///
/// `#[non_exhaustive]`: downstream matches need a wildcard arm so new
/// failure modes can be added without a breaking release.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A layer or block received an incompatible input shape.
    ShapeMismatch {
        /// Name of the offending layer/block.
        unit: String,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A block's paths produce outputs that cannot be merged.
    MergeMismatch {
        /// Name of the offending block.
        block: String,
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A model was built with no units.
    EmptyModel,
    /// A segment index range was out of bounds or empty.
    InvalidSegment {
        /// The requested segment start (inclusive).
        start: usize,
        /// The requested segment end (exclusive).
        end: usize,
        /// Number of units in the model.
        len: usize,
    },
}

impl ModelError {
    pub(crate) fn shape_mismatch(unit: &str, detail: impl Into<String>) -> Self {
        ModelError::ShapeMismatch {
            unit: unit.to_owned(),
            detail: detail.into(),
        }
    }

    pub(crate) fn merge_mismatch(block: &str, detail: impl Into<String>) -> Self {
        ModelError::MergeMismatch {
            block: block.to_owned(),
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::ShapeMismatch { unit, detail } => {
                write!(f, "shape mismatch at `{unit}`: {detail}")
            }
            ModelError::MergeMismatch { block, detail } => {
                write!(f, "merge mismatch in block `{block}`: {detail}")
            }
            ModelError::EmptyModel => write!(f, "model has no units"),
            ModelError::InvalidSegment { start, end, len } => {
                write!(
                    f,
                    "invalid segment [{start}, {end}) for model with {len} units"
                )
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = ModelError::shape_mismatch("conv1", "bad channels");
        assert_eq!(e.to_string(), "shape mismatch at `conv1`: bad channels");
        assert_eq!(ModelError::EmptyModel.to_string(), "model has no units");
        let e = ModelError::InvalidSegment {
            start: 3,
            end: 2,
            len: 10,
        };
        assert!(e.to_string().contains("[3, 2)"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
