use serde::{Deserialize, Serialize};

use crate::BYTES_PER_ELEMENT;

/// The shape of a CHW feature map: `channels x height x width`.
///
/// PICO partitions feature maps along the **height** dimension (rows),
/// following MoDNN's horizontal partitioning, so `height` is the axis
/// all region arithmetic in this workspace operates on.
///
/// # Example
///
/// ```
/// use pico_model::Shape;
///
/// let s = Shape::new(64, 112, 112);
/// assert_eq!(s.elements(), 64 * 112 * 112);
/// assert_eq!(s.bytes(), 4 * s.elements());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    /// Number of channels.
    pub channels: usize,
    /// Feature-map height (the partitioned axis).
    pub height: usize,
    /// Feature-map width.
    pub width: usize,
}

impl Shape {
    /// Creates a new shape.
    pub const fn new(channels: usize, height: usize, width: usize) -> Self {
        Shape {
            channels,
            height,
            width,
        }
    }

    /// Total number of scalar elements.
    pub const fn elements(&self) -> usize {
        self.channels * self.height * self.width
    }

    /// Size in bytes when stored as f32 (the paper's φ(F), Eq. 7).
    pub const fn bytes(&self) -> usize {
        self.elements() * BYTES_PER_ELEMENT
    }

    /// Bytes occupied by `rows` rows of this feature map.
    pub const fn row_bytes(&self, rows: usize) -> usize {
        self.channels * rows * self.width * BYTES_PER_ELEMENT
    }

    /// Returns this shape with a different number of rows.
    pub const fn with_height(&self, height: usize) -> Self {
        Shape {
            channels: self.channels,
            height,
            width: self.width,
        }
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}x{}", self.channels, self.height, self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elements_and_bytes() {
        let s = Shape::new(3, 224, 224);
        assert_eq!(s.elements(), 3 * 224 * 224);
        assert_eq!(s.bytes(), 4 * 3 * 224 * 224);
    }

    #[test]
    fn row_bytes_counts_partial_maps() {
        let s = Shape::new(16, 10, 8);
        assert_eq!(s.row_bytes(0), 0);
        assert_eq!(s.row_bytes(3), 16 * 3 * 8 * 4);
        assert_eq!(s.row_bytes(10), s.bytes());
    }

    #[test]
    fn with_height_preserves_other_dims() {
        let s = Shape::new(8, 20, 30).with_height(5);
        assert_eq!(s, Shape::new(8, 5, 30));
    }

    #[test]
    fn display_is_c_h_w() {
        assert_eq!(Shape::new(3, 224, 200).to_string(), "3x224x200");
    }
}
