//! Human-readable model summaries (à la `model.summary()`).

use crate::{Model, Rows, Unit};

/// One row of a [`summary`] table.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryRow {
    /// Unit index.
    pub index: usize,
    /// Unit name.
    pub name: String,
    /// `conv` / `pool` / `fc` / `block(n paths)`.
    pub kind: String,
    /// Output shape as `CxHxW`.
    pub output: String,
    /// Learnable parameters.
    pub parameters: usize,
    /// FLOPs for the full output map.
    pub flops: f64,
}

/// Per-unit rows for `model`, in execution order.
pub fn summary(model: &Model) -> Vec<SummaryRow> {
    (0..model.len())
        .map(|i| {
            let unit = model.unit(i);
            let out = model.unit_output_shape(i);
            let kind = match unit {
                Unit::Layer(l) if l.is_conv() => "conv".to_owned(),
                Unit::Layer(l) if l.is_pool() => "pool".to_owned(),
                Unit::Layer(_) => "fc".to_owned(),
                Unit::Block(b) => format!("block({} paths)", b.paths.len()),
            };
            SummaryRow {
                index: i,
                name: unit.name().to_owned(),
                kind,
                output: out.to_string(),
                parameters: unit.parameters(),
                flops: unit.flops(Rows::full(out.height), model.unit_input_shape(i), out),
            }
        })
        .collect()
}

/// Formats the summary as an aligned text table with totals.
///
/// # Example
///
/// ```
/// use pico_model::{summary::to_table, zoo};
///
/// let table = to_table(&zoo::mnist_toy());
/// assert!(table.contains("conv1"));
/// assert!(table.contains("total"));
/// ```
pub fn to_table(model: &Model) -> String {
    let rows = summary(model);
    let mut out = format!(
        "{} — input {}\n{:<4} {:<16} {:<16} {:<14} {:>12} {:>12}\n",
        model.name(),
        model.input_shape(),
        "#",
        "name",
        "kind",
        "output",
        "params",
        "MFLOPs"
    );
    for r in &rows {
        out.push_str(&format!(
            "{:<4} {:<16} {:<16} {:<14} {:>12} {:>12.2}\n",
            r.index,
            r.name,
            r.kind,
            r.output,
            r.parameters,
            r.flops / 1e6
        ));
    }
    out.push_str(&format!(
        "total: {} params, {:.2} GFLOPs over {} units ({} layers)\n",
        model.parameters(),
        model.total_flops() / 1e9,
        model.len(),
        model.layer_count()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn rows_cover_every_unit() {
        let m = zoo::vgg16();
        let rows = summary(&m);
        assert_eq!(rows.len(), m.len());
        assert_eq!(rows[0].kind, "conv");
        assert!(rows.last().unwrap().kind == "fc");
        let total: f64 = rows.iter().map(|r| r.flops).sum();
        assert!((total - m.total_flops()).abs() < 1e-3);
    }

    #[test]
    fn blocks_are_labelled_with_path_counts() {
        let m = zoo::inception_v3();
        let rows = summary(&m);
        assert!(rows.iter().any(|r| r.kind.starts_with("block(")));
    }

    #[test]
    fn table_includes_totals_and_shapes() {
        let t = to_table(&zoo::mnist_toy());
        assert!(t.contains("64x16x16"));
        assert!(t.contains("total:"));
    }
}
