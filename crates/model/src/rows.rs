use serde::{Deserialize, Serialize};

/// A half-open range of feature-map rows `[start, end)`.
///
/// This is the unit of feature-map partitioning in PICO: each device in a
/// stage is responsible for producing a `Rows` slice of the stage's output
/// feature map (the paper's region `F_j^k`).
///
/// Unlike [`std::ops::Range`], `Rows` is `Copy` and provides the interval
/// arithmetic (intersection, union-hull, clamping) that receptive-field
/// propagation needs.
///
/// # Example
///
/// ```
/// use pico_model::Rows;
///
/// let a = Rows::new(2, 8);
/// let b = Rows::new(6, 12);
/// assert_eq!(a.len(), 6);
/// assert_eq!(a.intersect(b), Rows::new(6, 8));
/// assert_eq!(a.hull(b), Rows::new(2, 12));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Rows {
    /// First row (inclusive).
    pub start: usize,
    /// One past the last row (exclusive).
    pub end: usize,
}

impl Rows {
    /// Creates a row range `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: usize, end: usize) -> Self {
        assert!(start <= end, "invalid row range {start}..{end}");
        Rows { start, end }
    }

    /// The empty range anchored at 0.
    pub const fn empty() -> Self {
        Rows { start: 0, end: 0 }
    }

    /// A range covering all `height` rows.
    pub const fn full(height: usize) -> Self {
        Rows {
            start: 0,
            end: height,
        }
    }

    /// Number of rows in the range.
    pub const fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the range contains no rows.
    pub const fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Intersection of two ranges (empty anchored at `self.start.max(other.start)`
    /// when disjoint).
    pub fn intersect(&self, other: Rows) -> Rows {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end).max(start);
        Rows { start, end }
    }

    /// Smallest range containing both (the union hull). Empty ranges are
    /// absorbed by non-empty ones.
    pub fn hull(&self, other: Rows) -> Rows {
        if self.is_empty() {
            return other;
        }
        if other.is_empty() {
            return *self;
        }
        Rows {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Clamps the range to `[0, height)`.
    pub fn clamp_to(&self, height: usize) -> Rows {
        let start = self.start.min(height);
        let end = self.end.min(height).max(start);
        Rows { start, end }
    }

    /// Whether `other` lies fully within this range.
    pub fn contains(&self, other: Rows) -> bool {
        other.is_empty() || (self.start <= other.start && other.end <= self.end)
    }

    /// Number of rows shared with `other`.
    pub fn overlap(&self, other: Rows) -> usize {
        self.intersect(other).len()
    }

    /// Iterates over row indices in the range.
    pub fn iter(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }
}

impl From<std::ops::Range<usize>> for Rows {
    fn from(r: std::ops::Range<usize>) -> Self {
        Rows::new(r.start, r.end)
    }
}

impl From<Rows> for std::ops::Range<usize> {
    fn from(r: Rows) -> Self {
        r.start..r.end
    }
}

impl std::fmt::Display for Rows {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// Splits `rows` into `parts` contiguous, nearly-equal chunks (the
/// "equivalently partitioned" feature map of the homogeneous DP step).
///
/// The first `rows.len() % parts` chunks get one extra row, so the chunk
/// sizes differ by at most one. Chunks may be empty when
/// `parts > rows.len()`.
///
/// # Example
///
/// ```
/// use pico_model::{rows_split_even, Rows};
///
/// let chunks = rows_split_even(Rows::new(0, 10), 4);
/// assert_eq!(chunks, vec![
///     Rows::new(0, 3), Rows::new(3, 6), Rows::new(6, 8), Rows::new(8, 10),
/// ]);
/// ```
pub fn rows_split_even(rows: Rows, parts: usize) -> Vec<Rows> {
    assert!(parts > 0, "cannot split rows into zero parts");
    let n = rows.len();
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut cursor = rows.start;
    for i in 0..parts {
        let take = base + usize::from(i < extra);
        out.push(Rows::new(cursor, cursor + take));
        cursor += take;
    }
    debug_assert_eq!(cursor, rows.end);
    out
}

/// Splits `rows` into contiguous chunks proportional to `weights`, using
/// largest-remainder rounding so the chunk lengths sum exactly to
/// `rows.len()`.
///
/// Used by the divide-and-conquer share balancing of Algorithm 2: a
/// device with twice the computing capacity receives (approximately)
/// twice the rows.
///
/// # Panics
///
/// Panics if `weights` is empty or any weight is negative or non-finite,
/// or if all weights are zero.
pub fn rows_split_weighted(rows: Rows, weights: &[f64]) -> Vec<Rows> {
    assert!(!weights.is_empty(), "cannot split rows with no weights");
    assert!(
        weights.iter().all(|w| w.is_finite() && *w >= 0.0),
        "weights must be finite and non-negative"
    );
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must not all be zero");

    let n = rows.len();
    // Ideal fractional share per weight; floor it, then hand out the
    // remaining rows to the largest fractional remainders.
    let ideals: Vec<f64> = weights.iter().map(|w| n as f64 * w / total).collect();
    let mut sizes: Vec<usize> = ideals.iter().map(|x| x.floor() as usize).collect();
    let assigned: usize = sizes.iter().sum();
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = ideals[a] - ideals[a].floor();
        let fb = ideals[b] - ideals[b].floor();
        fb.partial_cmp(&fa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    for &i in order.iter().take(n - assigned) {
        sizes[i] += 1;
    }

    let mut out = Vec::with_capacity(weights.len());
    let mut cursor = rows.start;
    for size in sizes {
        out.push(Rows::new(cursor, cursor + size));
        cursor += size;
    }
    debug_assert_eq!(cursor, rows.end);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_disjoint_is_empty() {
        let a = Rows::new(0, 3);
        let b = Rows::new(5, 9);
        assert!(a.intersect(b).is_empty());
    }

    #[test]
    fn hull_absorbs_empty() {
        let a = Rows::new(4, 9);
        assert_eq!(a.hull(Rows::empty()), a);
        assert_eq!(Rows::empty().hull(a), a);
    }

    #[test]
    fn clamp_truncates() {
        assert_eq!(Rows::new(3, 12).clamp_to(10), Rows::new(3, 10));
        assert_eq!(Rows::new(11, 12).clamp_to(10), Rows::new(10, 10));
    }

    #[test]
    fn contains_and_overlap() {
        let a = Rows::new(2, 10);
        assert!(a.contains(Rows::new(2, 10)));
        assert!(a.contains(Rows::new(4, 5)));
        assert!(!a.contains(Rows::new(1, 5)));
        assert_eq!(a.overlap(Rows::new(8, 14)), 2);
    }

    #[test]
    fn split_even_covers_exactly() {
        let chunks = rows_split_even(Rows::new(3, 17), 4);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[0].start, 3);
        assert_eq!(chunks.last().unwrap().end, 17);
        for w in chunks.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        let max = chunks.iter().map(Rows::len).max().unwrap();
        let min = chunks.iter().map(Rows::len).min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    fn split_even_more_parts_than_rows() {
        let chunks = rows_split_even(Rows::new(0, 2), 5);
        assert_eq!(chunks.iter().map(Rows::len).sum::<usize>(), 2);
        assert_eq!(chunks.len(), 5);
    }

    #[test]
    fn split_weighted_is_proportional() {
        let chunks = rows_split_weighted(Rows::new(0, 12), &[2.0, 1.0, 1.0]);
        assert_eq!(chunks[0].len(), 6);
        assert_eq!(chunks[1].len(), 3);
        assert_eq!(chunks[2].len(), 3);
    }

    #[test]
    fn split_weighted_largest_remainder() {
        let chunks = rows_split_weighted(Rows::new(0, 10), &[1.0, 1.0, 1.0]);
        let total: usize = chunks.iter().map(Rows::len).sum();
        assert_eq!(total, 10);
        let max = chunks.iter().map(Rows::len).max().unwrap();
        let min = chunks.iter().map(Rows::len).min().unwrap();
        assert!(max - min <= 1);
    }

    #[test]
    #[should_panic(expected = "weights must not all be zero")]
    fn split_weighted_rejects_zero_total() {
        rows_split_weighted(Rows::new(0, 4), &[0.0, 0.0]);
    }

    #[test]
    fn range_conversions_roundtrip() {
        let r: Rows = (3..9).into();
        let back: std::ops::Range<usize> = r.into();
        assert_eq!(back, 3..9);
    }
}
