use serde::{Deserialize, Serialize};

use crate::{Block, Layer, ModelError, Rows, Shape};

/// A planning unit of a model: a plain layer, or a graph-structured
/// block treated as a "special layer" (Sec. IV-B).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Unit {
    /// A single layer.
    Layer(Layer),
    /// A residual/inception block.
    Block(Block),
}

impl Unit {
    /// The unit's name.
    pub fn name(&self) -> &str {
        match self {
            Unit::Layer(l) => &l.name,
            Unit::Block(b) => &b.name,
        }
    }

    /// Output shape for the given input shape.
    ///
    /// # Errors
    ///
    /// Propagates shape/merge mismatches from the underlying layer or
    /// block.
    pub fn output_shape(&self, input: Shape) -> Result<Shape, ModelError> {
        match self {
            Unit::Layer(l) => l.output_shape(input),
            Unit::Block(b) => b.output_shape(input),
        }
    }

    /// Input rows required to produce output rows `out`, given this
    /// unit's input shape.
    pub fn input_rows(&self, out: Rows, input: Shape) -> Rows {
        match self {
            Unit::Layer(l) => l.input_rows(out, input.height),
            Unit::Block(b) => b
                .input_rows(out, input)
                .expect("input shape was validated at model construction"),
        }
    }

    /// FLOPs to produce output rows `out`, given the unit's input and
    /// output shapes.
    pub fn flops(&self, out: Rows, input: Shape, output: Shape) -> f64 {
        let out = out.clamp_to(output.height);
        match self {
            Unit::Layer(l) => l.flops(out.len(), output),
            Unit::Block(b) => b
                .flops(out, input)
                .expect("input shape was validated at model construction"),
        }
    }

    /// Number of learnable parameters.
    pub fn parameters(&self) -> usize {
        match self {
            Unit::Layer(l) => l.parameters(),
            Unit::Block(b) => b.parameters(),
        }
    }

    /// Number of underlying layers (1 for a plain layer; all paths'
    /// layers for a block).
    pub fn layer_count(&self) -> usize {
        match self {
            Unit::Layer(_) => 1,
            Unit::Block(b) => b.layer_count(),
        }
    }

    /// Whether the unit's output can be row-partitioned across devices.
    /// Fully-connected layers cannot (they consume the whole input).
    pub fn is_partitionable(&self) -> bool {
        match self {
            Unit::Layer(l) => !l.is_fc(),
            Unit::Block(_) => true,
        }
    }

    /// Whether the unit is (or contains only) convolution layers.
    pub fn is_conv(&self) -> bool {
        match self {
            Unit::Layer(l) => l.is_conv(),
            Unit::Block(_) => true,
        }
    }
}

impl From<Layer> for Unit {
    fn from(l: Layer) -> Self {
        Unit::Layer(l)
    }
}

impl From<Block> for Unit {
    fn from(b: Block) -> Self {
        Unit::Block(b)
    }
}

/// A contiguous, half-open range of model units `[start, end)` — the
/// paper's model segment `M_{i->j}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Segment {
    /// First unit index (inclusive).
    pub start: usize,
    /// One past the last unit index (exclusive).
    pub end: usize,
}

impl Segment {
    /// Creates a segment `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end` (segments must be non-empty).
    pub fn new(start: usize, end: usize) -> Self {
        assert!(start < end, "segment [{start}, {end}) must be non-empty");
        Segment { start, end }
    }

    /// Number of units in the segment.
    pub const fn len(&self) -> usize {
        self.end - self.start
    }

    /// Always `false`: segments are non-empty by construction.
    pub const fn is_empty(&self) -> bool {
        false
    }

    /// Iterates unit indices in the segment.
    pub fn iter(&self) -> std::ops::Range<usize> {
        self.start..self.end
    }
}

impl std::fmt::Display for Segment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

/// A CNN model: a named chain of [`Unit`]s with a fixed input shape and
/// pre-computed per-unit shapes.
///
/// Shapes are inferred once at construction; all segment analyses
/// (receptive fields, FLOPs, communication volumes) are then cheap
/// lookups plus interval arithmetic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Model {
    name: String,
    units: Vec<Unit>,
    /// `shapes[0]` is the model input; `shapes[i + 1]` is unit `i`'s output.
    shapes: Vec<Shape>,
}

impl Model {
    /// Builds a model, validating that every unit accepts its
    /// predecessor's output shape.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::EmptyModel`] for an empty unit list, or the
    /// first shape/merge mismatch found during inference.
    pub fn new(
        name: impl Into<String>,
        input: Shape,
        units: Vec<Unit>,
    ) -> Result<Self, ModelError> {
        if units.is_empty() {
            return Err(ModelError::EmptyModel);
        }
        let mut shapes = Vec::with_capacity(units.len() + 1);
        shapes.push(input);
        for unit in &units {
            let prev = *shapes.last().expect("shapes starts non-empty");
            shapes.push(unit.output_shape(prev)?);
        }
        Ok(Model {
            name: name.into(),
            units,
            shapes,
        })
    }

    /// The model's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of planning units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Whether the model has no units (never true for a constructed model).
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// The units, in execution order.
    pub fn units(&self) -> &[Unit] {
        &self.units
    }

    /// A single unit by index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn unit(&self, index: usize) -> &Unit {
        &self.units[index]
    }

    /// The model's input shape.
    pub fn input_shape(&self) -> Shape {
        self.shapes[0]
    }

    /// The model's final output shape.
    pub fn output_shape(&self) -> Shape {
        *self.shapes.last().expect("shapes is never empty")
    }

    /// Input shape of unit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn unit_input_shape(&self, index: usize) -> Shape {
        assert!(index < self.len(), "unit index {index} out of bounds");
        self.shapes[index]
    }

    /// Output shape of unit `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn unit_output_shape(&self, index: usize) -> Shape {
        assert!(index < self.len(), "unit index {index} out of bounds");
        self.shapes[index + 1]
    }

    /// The segment covering the whole model.
    pub fn full_segment(&self) -> Segment {
        Segment::new(0, self.len())
    }

    /// Validates that `seg` addresses units of this model.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidSegment`] when out of bounds.
    pub fn check_segment(&self, seg: Segment) -> Result<(), ModelError> {
        if seg.end > self.len() {
            return Err(ModelError::InvalidSegment {
                start: seg.start,
                end: seg.end,
                len: self.len(),
            });
        }
        Ok(())
    }

    /// Back-propagates an output row range through segment `seg`
    /// (Eq. 3 applied unit by unit), returning the rows of the
    /// *segment input* required to produce `out_rows` of the segment's
    /// final unit.
    ///
    /// # Panics
    ///
    /// Panics if `seg` is out of bounds.
    pub fn segment_input_rows(&self, seg: Segment, out_rows: Rows) -> Rows {
        self.check_segment(seg).expect("segment out of bounds");
        let mut rows = out_rows.clamp_to(self.unit_output_shape(seg.end - 1).height);
        for i in seg.iter().rev() {
            rows = self.units[i].input_rows(rows, self.unit_input_shape(i));
        }
        rows
    }

    /// Per-unit output rows a device computes when assigned output rows
    /// `out_rows` of segment `seg`. `result[k]` is the rows of unit
    /// `seg.start + k`'s output.
    ///
    /// # Panics
    ///
    /// Panics if `seg` is out of bounds.
    pub fn segment_row_trace(&self, seg: Segment, out_rows: Rows) -> Vec<Rows> {
        self.check_segment(seg).expect("segment out of bounds");
        let mut trace = vec![Rows::empty(); seg.len()];
        let mut rows = out_rows.clamp_to(self.unit_output_shape(seg.end - 1).height);
        for (k, i) in seg.iter().enumerate().rev() {
            trace[k] = rows;
            rows = self.units[i].input_rows(rows, self.unit_input_shape(i));
        }
        trace
    }

    /// FLOPs a device spends producing output rows `out_rows` of segment
    /// `seg`, including all halo (redundant) computation of intermediate
    /// units (Eq. 4 with Eq. 3 expansion).
    ///
    /// # Panics
    ///
    /// Panics if `seg` is out of bounds.
    pub fn segment_flops(&self, seg: Segment, out_rows: Rows) -> f64 {
        let trace = self.segment_row_trace(seg, out_rows);
        let mut total = 0.0;
        for (k, i) in seg.iter().enumerate() {
            total += self.units[i].flops(
                trace[k],
                self.unit_input_shape(i),
                self.unit_output_shape(i),
            );
        }
        total
    }

    /// FLOPs of the whole segment computed exactly once (no redundancy):
    /// the sum over units of their full-map cost.
    ///
    /// # Panics
    ///
    /// Panics if `seg` is out of bounds.
    pub fn segment_total_flops(&self, seg: Segment) -> f64 {
        self.check_segment(seg).expect("segment out of bounds");
        seg.iter()
            .map(|i| {
                let out = self.unit_output_shape(i);
                self.units[i].flops(Rows::full(out.height), self.unit_input_shape(i), out)
            })
            .sum()
    }

    /// Total FLOPs of the whole model (single-device inference).
    pub fn total_flops(&self) -> f64 {
        self.segment_total_flops(self.full_segment())
    }

    /// Total learnable parameters.
    pub fn parameters(&self) -> usize {
        self.units.iter().map(Unit::parameters).sum()
    }

    /// Number of underlying layers, expanding blocks.
    pub fn layer_count(&self) -> usize {
        self.units.iter().map(Unit::layer_count).sum()
    }

    /// A copy of this model without its trailing non-partitionable
    /// (fully-connected) units — the "feature extractor" the paper's
    /// planners operate on (its layer counts for VGG16/YOLOv2 exclude
    /// FC layers).
    ///
    /// Returns `self` unchanged if the model has no trailing FC units.
    pub fn features(&self) -> Model {
        let mut end = self.len();
        while end > 1 && !self.units[end - 1].is_partitionable() {
            end -= 1;
        }
        Model {
            name: format!("{}-features", self.name),
            units: self.units[..end].to_vec(),
            shapes: self.shapes[..=end].to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConvSpec, PoolSpec};

    fn chain() -> Model {
        Model::new(
            "tiny",
            Shape::new(3, 32, 32),
            vec![
                Layer::conv("c1", ConvSpec::square(3, 8, 3, 1, 1)).into(),
                Layer::pool("p1", PoolSpec::max(2, 2)).into(),
                Layer::conv("c2", ConvSpec::square(8, 16, 3, 1, 1)).into(),
                Layer::fc("fc", 16 * 16 * 16, 10).into(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn shapes_are_inferred() {
        let m = chain();
        assert_eq!(m.input_shape(), Shape::new(3, 32, 32));
        assert_eq!(m.unit_output_shape(0), Shape::new(8, 32, 32));
        assert_eq!(m.unit_output_shape(1), Shape::new(8, 16, 16));
        assert_eq!(m.unit_output_shape(2), Shape::new(16, 16, 16));
        assert_eq!(m.output_shape(), Shape::new(10, 1, 1));
    }

    #[test]
    fn empty_model_rejected() {
        assert_eq!(
            Model::new("x", Shape::new(1, 1, 1), vec![]),
            Err(ModelError::EmptyModel)
        );
    }

    #[test]
    fn invalid_chain_rejected() {
        let err = Model::new(
            "x",
            Shape::new(3, 32, 32),
            vec![
                Layer::conv("c1", ConvSpec::square(3, 8, 3, 1, 1)).into(),
                Layer::conv("c2", ConvSpec::square(999, 8, 3, 1, 1)).into(),
            ],
        );
        assert!(matches!(err, Err(ModelError::ShapeMismatch { .. })));
    }

    #[test]
    fn segment_input_rows_composes() {
        let m = chain();
        // Through conv(3x3, pad 1) then pool(2x2): pool rows 0..4 need
        // conv-out rows 0..8, which need input rows 0..9.
        let rows = m.segment_input_rows(Segment::new(0, 2), Rows::new(0, 4));
        assert_eq!(rows, Rows::new(0, 9));
    }

    #[test]
    fn segment_row_trace_matches_inputs() {
        let m = chain();
        let trace = m.segment_row_trace(Segment::new(0, 2), Rows::new(4, 8));
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[1], Rows::new(4, 8)); // pool output rows
        assert_eq!(trace[0], Rows::new(8, 16)); // conv output rows (pool input)
    }

    #[test]
    fn segment_flops_full_has_no_redundancy() {
        let m = chain();
        let seg = Segment::new(0, 3);
        let full = m.segment_flops(seg, Rows::full(16));
        assert_eq!(full, m.segment_total_flops(seg));
    }

    #[test]
    fn split_segment_flops_exceed_total() {
        // Two half-splits each carry halo rows, so their sum exceeds the
        // monolithic cost — the redundancy the paper minimizes.
        let m = chain();
        let seg = Segment::new(0, 3);
        let top = m.segment_flops(seg, Rows::new(0, 8));
        let bottom = m.segment_flops(seg, Rows::new(8, 16));
        assert!(top + bottom > m.segment_total_flops(seg));
    }

    #[test]
    fn out_of_range_rows_are_clamped() {
        let m = chain();
        let seg = Segment::new(0, 1);
        assert_eq!(
            m.segment_flops(seg, Rows::new(0, 1000)),
            m.segment_flops(seg, Rows::full(32))
        );
    }

    #[test]
    fn features_strips_trailing_fc() {
        let m = chain();
        let f = m.features();
        assert_eq!(f.len(), 3);
        assert_eq!(f.output_shape(), Shape::new(16, 16, 16));
        assert_eq!(f.name(), "tiny-features");
        // Idempotent on a model with no FC.
        assert_eq!(f.features().len(), 3);
    }

    #[test]
    fn check_segment_bounds() {
        let m = chain();
        assert!(m.check_segment(Segment::new(0, 4)).is_ok());
        assert!(matches!(
            m.check_segment(Segment::new(2, 5)),
            Err(ModelError::InvalidSegment { .. })
        ));
    }

    #[test]
    fn layer_and_parameter_counts() {
        let m = chain();
        assert_eq!(m.layer_count(), 4);
        let expected = (3 * 3 * 3 * 8 + 8) + (3 * 3 * 8 * 16 + 16) + (16 * 16 * 16 * 10 + 10);
        assert_eq!(m.parameters(), expected);
    }

    #[test]
    fn model_with_block_unit() {
        let m = Model::new(
            "resnetty",
            Shape::new(16, 16, 16),
            vec![Unit::Block(Block::residual(
                "res",
                vec![
                    Layer::conv("a", ConvSpec::square(16, 16, 3, 1, 1)),
                    Layer::conv("b", ConvSpec::square(16, 16, 3, 1, 1)),
                ],
                vec![],
            ))],
        )
        .unwrap();
        assert_eq!(m.output_shape(), Shape::new(16, 16, 16));
        assert_eq!(m.layer_count(), 2);
        // Halo through two 3x3 convs: 2 rows each side.
        assert_eq!(
            m.segment_input_rows(m.full_segment(), Rows::new(5, 9)),
            Rows::new(3, 11)
        );
    }
}
