//! CNN model representation for PICO cooperative inference.
//!
//! This crate provides the *shape-level* description of convolutional
//! neural networks that the PICO planner, simulator, and runtime operate
//! on: layers (convolution, pooling, fully-connected), graph-structured
//! blocks (residual / inception, treated as "special layers" per
//! Sec. IV-B of the paper), whole models, and the analyses the paper's
//! cost model is built on:
//!
//! * forward **shape inference** ([`Model::unit_output_shape`]),
//! * backward **receptive-field propagation** of row ranges (Eq. 3,
//!   [`Model::segment_input_rows`]),
//! * **FLOPs accounting** (Eq. 2 / Eq. 4, [`Model::segment_flops`]),
//! * per-layer communication/computation **profiles** (Fig. 2,
//!   [`profile::layer_profile`]).
//!
//! A [`zoo`] module reproduces the architectures evaluated in the paper:
//! VGG16, YOLOv2, ResNet34, InceptionV3, and the toy models used for the
//! optimal-search comparison (Table II, Fig. 13).
//!
//! # Example
//!
//! ```
//! use pico_model::{zoo, Rows};
//!
//! let vgg = zoo::vgg16();
//! // VGG16: 13 conv + 5 pool + 3 fc = 21 units.
//! assert_eq!(vgg.len(), 21);
//!
//! // Rows 0..8 of the first pooling layer's output require rows 0..18
//! // of the original 224x224 input (receptive-field back-propagation
//! // through two 3x3 convolutions and one 2x2 pool).
//! let seg = pico_model::Segment::new(0, 3); // conv1_1, conv1_2, pool1
//! let input = vgg.segment_input_rows(seg, Rows::new(0, 8));
//! assert_eq!(input, Rows::new(0, 18));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod error;
mod layer;
mod model;
pub mod profile;
mod region;
mod rows;
mod shape;
pub mod summary;
pub mod zoo;

pub use block::{Block, Merge, Path};
pub use error::ModelError;
pub use layer::{ConvSpec, FcSpec, Layer, LayerKind, PoolKind, PoolSpec};
pub use model::{Model, Segment, Unit};
pub use region::{grid_split_even, Region2};
pub use rows::{rows_split_even, rows_split_weighted, Rows};
pub use shape::Shape;

/// Bytes used by one feature-map scalar (single-precision float).
pub const BYTES_PER_ELEMENT: usize = 4;
