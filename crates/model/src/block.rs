use serde::{Deserialize, Serialize};

use crate::{Layer, ModelError, Rows, Shape};

/// How the outputs of a block's parallel paths are combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Merge {
    /// Element-wise addition (residual connection). All paths must
    /// produce identical shapes.
    Add,
    /// Channel-wise concatenation (inception). All paths must agree on
    /// height and width; channels are summed.
    Concat,
}

/// One branch of a [`Block`]: a chain of layers. An empty path is the
/// identity shortcut of a residual block.
pub type Path = Vec<Layer>;

/// A graph-structured "special layer" (Sec. IV-B of the paper): several
/// parallel layer chains from one input feature map, merged into one
/// output feature map.
///
/// ResNet34's residual blocks and InceptionV3's inception blocks are both
/// expressed this way. For planning purposes a block behaves like a
/// single layer whose input row requirement is the *union hull* over its
/// paths ("we first calculate the partition of input feature map for
/// every path in one block, and then combine them into a bigger one").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// Human-readable name (e.g. `res2a`, `mixed_5b`).
    pub name: String,
    /// The parallel paths.
    pub paths: Vec<Path>,
    /// How path outputs merge.
    pub merge: Merge,
}

impl Block {
    /// Creates a block from its paths.
    pub fn new(name: impl Into<String>, paths: Vec<Path>, merge: Merge) -> Self {
        Block {
            name: name.into(),
            paths,
            merge,
        }
    }

    /// A residual block: `main` path plus a shortcut path (empty =
    /// identity, or a projection convolution for dimension changes).
    pub fn residual(name: impl Into<String>, main: Path, shortcut: Path) -> Self {
        Block::new(name, vec![main, shortcut], Merge::Add)
    }

    /// Output shape of one path for a given block input shape.
    fn path_output_shape(&self, path: &[Layer], input: Shape) -> Result<Shape, ModelError> {
        let mut shape = input;
        for layer in path {
            shape = layer.output_shape(shape)?;
        }
        Ok(shape)
    }

    /// Output shape of the whole block.
    ///
    /// # Errors
    ///
    /// Returns an error if any path rejects the input shape, or the path
    /// outputs cannot be merged (mismatched shapes for [`Merge::Add`],
    /// mismatched spatial dims for [`Merge::Concat`]).
    pub fn output_shape(&self, input: Shape) -> Result<Shape, ModelError> {
        if self.paths.is_empty() {
            return Err(ModelError::merge_mismatch(&self.name, "block has no paths"));
        }
        let shapes: Vec<Shape> = self
            .paths
            .iter()
            .map(|p| self.path_output_shape(p, input))
            .collect::<Result<_, _>>()?;
        match self.merge {
            Merge::Add => {
                let first = shapes[0];
                if shapes.iter().any(|s| *s != first) {
                    return Err(ModelError::merge_mismatch(
                        &self.name,
                        format!("add requires identical path outputs, got {shapes:?}"),
                    ));
                }
                Ok(first)
            }
            Merge::Concat => {
                let (h, w) = (shapes[0].height, shapes[0].width);
                if shapes.iter().any(|s| s.height != h || s.width != w) {
                    return Err(ModelError::merge_mismatch(
                        &self.name,
                        format!("concat requires equal spatial dims, got {shapes:?}"),
                    ));
                }
                let channels = shapes.iter().map(|s| s.channels).sum();
                Ok(Shape::new(channels, h, w))
            }
        }
    }

    /// Input rows required to produce output rows `out`, as the union
    /// hull over all paths (each path back-propagates `out` through its
    /// layers; `in_height` is the block's input height).
    pub fn input_rows(&self, out: Rows, input: Shape) -> Result<Rows, ModelError> {
        let mut hull = Rows::empty();
        for path in &self.paths {
            let mut rows = out;
            // Walk the path backwards, tracking each layer's input height.
            let heights = self.path_heights(path, input)?;
            for (layer, in_h) in path.iter().zip(heights.iter()).rev() {
                rows = layer.input_rows(rows, *in_h);
            }
            hull = hull.hull(rows);
        }
        Ok(hull)
    }

    /// Input height of each layer along `path` (index `i` = input height
    /// of `path[i]`).
    fn path_heights(&self, path: &[Layer], input: Shape) -> Result<Vec<usize>, ModelError> {
        let mut heights = Vec::with_capacity(path.len());
        let mut shape = input;
        for layer in path {
            heights.push(shape.height);
            shape = layer.output_shape(shape)?;
        }
        Ok(heights)
    }

    /// FLOPs to compute output rows `out` of this block, summed over all
    /// paths with per-layer receptive-field back-propagation.
    pub fn flops(&self, out: Rows, input: Shape) -> Result<f64, ModelError> {
        let mut total = 0.0;
        for path in &self.paths {
            // Forward pass to know every intermediate shape.
            let mut shapes = Vec::with_capacity(path.len() + 1);
            shapes.push(input);
            for layer in path {
                let prev = *shapes.last().expect("shapes is never empty");
                shapes.push(layer.output_shape(prev)?);
            }
            // Backward pass: rows each layer must produce.
            let mut rows = out;
            for (i, layer) in path.iter().enumerate().rev() {
                let out_shape = shapes[i + 1];
                let produced = rows.clamp_to(out_shape.height);
                total += layer.flops(produced.len(), out_shape);
                rows = layer.input_rows(produced, shapes[i].height);
            }
        }
        Ok(total)
    }

    /// Total learnable parameters across all paths.
    pub fn parameters(&self) -> usize {
        self.paths
            .iter()
            .flat_map(|p| p.iter())
            .map(Layer::parameters)
            .sum()
    }

    /// Number of layers across all paths.
    pub fn layer_count(&self) -> usize {
        self.paths.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ConvSpec;

    fn identity_residual() -> Block {
        Block::residual(
            "res",
            vec![
                Layer::conv("a", ConvSpec::square(64, 64, 3, 1, 1)),
                Layer::conv("b", ConvSpec::square(64, 64, 3, 1, 1)),
            ],
            vec![],
        )
    }

    #[test]
    fn residual_shape_is_preserved() {
        let b = identity_residual();
        let out = b.output_shape(Shape::new(64, 56, 56)).unwrap();
        assert_eq!(out, Shape::new(64, 56, 56));
    }

    #[test]
    fn residual_rejects_mismatched_add() {
        let b = Block::residual(
            "res",
            vec![Layer::conv("a", ConvSpec::square(64, 128, 3, 1, 1))],
            vec![],
        );
        assert!(matches!(
            b.output_shape(Shape::new(64, 56, 56)),
            Err(ModelError::MergeMismatch { .. })
        ));
    }

    #[test]
    fn concat_sums_channels() {
        let b = Block::new(
            "inc",
            vec![
                vec![Layer::conv("p1", ConvSpec::pointwise(192, 64))],
                vec![
                    Layer::conv("p2a", ConvSpec::pointwise(192, 48)),
                    Layer::conv("p2b", ConvSpec::square(48, 64, 5, 1, 2)),
                ],
            ],
            Merge::Concat,
        );
        let out = b.output_shape(Shape::new(192, 35, 35)).unwrap();
        assert_eq!(out, Shape::new(128, 35, 35));
    }

    #[test]
    fn concat_rejects_spatial_mismatch() {
        let b = Block::new(
            "bad",
            vec![
                vec![Layer::conv("a", ConvSpec::pointwise(8, 8))],
                vec![Layer::conv("b", ConvSpec::square(8, 8, 3, 2, 1))],
            ],
            Merge::Concat,
        );
        assert!(b.output_shape(Shape::new(8, 16, 16)).is_err());
    }

    #[test]
    fn empty_block_is_rejected() {
        let b = Block::new("none", vec![], Merge::Add);
        assert!(b.output_shape(Shape::new(8, 8, 8)).is_err());
    }

    #[test]
    fn input_rows_is_union_hull_of_paths() {
        // Main path: two 3x3 convs -> needs 2-row halo each side.
        // Shortcut: identity -> needs exactly the output rows.
        let b = identity_residual();
        let input = Shape::new(64, 56, 56);
        let rows = b.input_rows(Rows::new(10, 20), input).unwrap();
        assert_eq!(rows, Rows::new(8, 22));
    }

    #[test]
    fn input_rows_identity_only() {
        let b = Block::new("id", vec![vec![]], Merge::Add);
        let rows = b
            .input_rows(Rows::new(3, 7), Shape::new(8, 16, 16))
            .unwrap();
        assert_eq!(rows, Rows::new(3, 7));
    }

    #[test]
    fn flops_full_equals_sum_of_paths() {
        let b = identity_residual();
        let input = Shape::new(64, 56, 56);
        let full = b.flops(Rows::full(56), input).unwrap();
        let per_conv = (3 * 3 * 64 * 56 * 56 * 64) as f64;
        assert_eq!(full, 2.0 * per_conv);
    }

    #[test]
    fn flops_partial_rows_accounts_halo() {
        let b = identity_residual();
        let input = Shape::new(64, 56, 56);
        // Output rows 10..20: conv "b" produces 10 rows, conv "a" must
        // produce its receptive field 9..21 = 12 rows.
        let flops = b.flops(Rows::new(10, 20), input).unwrap();
        let w = 56;
        let expected = (3 * 3 * 64 * 64 * w) as f64 * (10.0 + 12.0);
        assert_eq!(flops, expected);
    }

    #[test]
    fn parameters_and_layer_count() {
        let b = identity_residual();
        assert_eq!(b.layer_count(), 2);
        assert_eq!(b.parameters(), 2 * (3 * 3 * 64 * 64 + 64));
    }
}
