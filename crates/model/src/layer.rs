use serde::{Deserialize, Serialize};

use crate::{ModelError, Rows, Shape};

/// Parameters of a 2-D convolution layer.
///
/// Non-square kernels (e.g. the `1x7` / `7x1` convolutions of
/// InceptionV3) are supported by keeping separate vertical/horizontal
/// kernel, stride, and padding values. Only the *vertical* parameters
/// participate in row-range receptive-field arithmetic because PICO
/// partitions feature maps along the height axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvSpec {
    /// Input channels (`c_{i-1}` in Eq. 2).
    pub in_channels: usize,
    /// Output channels (`c_i` in Eq. 2).
    pub out_channels: usize,
    /// Kernel height and width (`k_i`).
    pub kernel: (usize, usize),
    /// Vertical and horizontal stride (`s_i`).
    pub stride: (usize, usize),
    /// Vertical and horizontal zero padding.
    pub padding: (usize, usize),
    /// Channel groups (1 = dense convolution; `in_channels` = depthwise,
    /// the MobileNet building block). Must divide both channel counts.
    pub groups: usize,
}

impl ConvSpec {
    /// A square-kernel convolution with equal stride/padding on both axes.
    pub const fn square(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Self {
        ConvSpec {
            in_channels,
            out_channels,
            kernel: (kernel, kernel),
            stride: (stride, stride),
            padding: (padding, padding),
            groups: 1,
        }
    }

    /// A depthwise convolution: one kernel per channel
    /// (`groups = channels`), MobileNet-style.
    pub const fn depthwise(channels: usize, kernel: usize, stride: usize, padding: usize) -> Self {
        ConvSpec {
            in_channels: channels,
            out_channels: channels,
            kernel: (kernel, kernel),
            stride: (stride, stride),
            padding: (padding, padding),
            groups: channels,
        }
    }

    /// Input channels each output channel reads (`in_channels / groups`).
    pub const fn in_per_group(&self) -> usize {
        self.in_channels / self.groups
    }

    /// A 1x1 "pointwise" convolution (stride 1, no padding).
    pub const fn pointwise(in_channels: usize, out_channels: usize) -> Self {
        Self::square(in_channels, out_channels, 1, 1, 0)
    }
}

/// Pooling flavour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Max pooling.
    Max,
    /// Average pooling.
    Avg,
}

/// Parameters of a pooling layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PoolSpec {
    /// Pooling flavour.
    pub kind: PoolKind,
    /// Kernel height and width.
    pub kernel: (usize, usize),
    /// Vertical and horizontal stride.
    pub stride: (usize, usize),
    /// Vertical and horizontal zero padding.
    pub padding: (usize, usize),
}

impl PoolSpec {
    /// A square max-pool with no padding.
    pub const fn max(kernel: usize, stride: usize) -> Self {
        PoolSpec {
            kind: PoolKind::Max,
            kernel: (kernel, kernel),
            stride: (stride, stride),
            padding: (0, 0),
        }
    }

    /// A square average-pool with no padding.
    pub const fn avg(kernel: usize, stride: usize) -> Self {
        PoolSpec {
            kind: PoolKind::Avg,
            kernel: (kernel, kernel),
            stride: (stride, stride),
            padding: (0, 0),
        }
    }
}

/// Parameters of a fully-connected layer.
///
/// The input feature map is flattened (`channels * height * width`
/// must equal `in_features`). Fully-connected layers require the
/// *entire* input, so they cannot be row-partitioned; the planners keep
/// them in single-device stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FcSpec {
    /// Flattened input features.
    pub in_features: usize,
    /// Output features.
    pub out_features: usize,
}

/// What a [`Layer`] computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerKind {
    /// 2-D convolution (with an implicit fused activation; activation
    /// FLOPs are negligible and ignored, like the paper does).
    Conv(ConvSpec),
    /// Spatial pooling.
    Pool(PoolSpec),
    /// Fully-connected layer on the flattened feature map.
    Fc(FcSpec),
}

/// One neural layer: a named [`LayerKind`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Layer {
    /// Human-readable name (e.g. `conv1_1`).
    pub name: String,
    /// The layer's computation.
    pub kind: LayerKind,
}

impl Layer {
    /// Creates a named layer.
    pub fn new(name: impl Into<String>, kind: LayerKind) -> Self {
        Layer {
            name: name.into(),
            kind,
        }
    }

    /// Convenience constructor for a convolution layer.
    pub fn conv(name: impl Into<String>, spec: ConvSpec) -> Self {
        Layer::new(name, LayerKind::Conv(spec))
    }

    /// Convenience constructor for a pooling layer.
    pub fn pool(name: impl Into<String>, spec: PoolSpec) -> Self {
        Layer::new(name, LayerKind::Pool(spec))
    }

    /// Convenience constructor for a fully-connected layer.
    pub fn fc(name: impl Into<String>, in_features: usize, out_features: usize) -> Self {
        Layer::new(
            name,
            LayerKind::Fc(FcSpec {
                in_features,
                out_features,
            }),
        )
    }

    /// Whether this layer is a convolution.
    pub fn is_conv(&self) -> bool {
        matches!(self.kind, LayerKind::Conv(_))
    }

    /// Whether this layer is a pooling layer.
    pub fn is_pool(&self) -> bool {
        matches!(self.kind, LayerKind::Pool(_))
    }

    /// Whether this layer is fully-connected.
    pub fn is_fc(&self) -> bool {
        matches!(self.kind, LayerKind::Fc(_))
    }

    /// Output shape for a given input shape.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::ShapeMismatch`] when the input is
    /// incompatible (wrong channel count, kernel larger than the padded
    /// input, or a flattened size that does not match an FC layer).
    pub fn output_shape(&self, input: Shape) -> Result<Shape, ModelError> {
        match &self.kind {
            LayerKind::Conv(c) => {
                if input.channels != c.in_channels {
                    return Err(ModelError::shape_mismatch(
                        &self.name,
                        format!(
                            "conv expects {} input channels, got {}",
                            c.in_channels, input.channels
                        ),
                    ));
                }
                if c.groups == 0 || c.in_channels % c.groups != 0 || c.out_channels % c.groups != 0
                {
                    return Err(ModelError::shape_mismatch(
                        &self.name,
                        format!(
                            "groups {} must divide channels {}->{}",
                            c.groups, c.in_channels, c.out_channels
                        ),
                    ));
                }
                let h = conv_out_dim(input.height, c.kernel.0, c.stride.0, c.padding.0)
                    .ok_or_else(|| {
                        ModelError::shape_mismatch(
                            &self.name,
                            format!(
                                "kernel {}x{} too large for input {input}",
                                c.kernel.0, c.kernel.1
                            ),
                        )
                    })?;
                let w = conv_out_dim(input.width, c.kernel.1, c.stride.1, c.padding.1).ok_or_else(
                    || {
                        ModelError::shape_mismatch(
                            &self.name,
                            format!(
                                "kernel {}x{} too large for input {input}",
                                c.kernel.0, c.kernel.1
                            ),
                        )
                    },
                )?;
                Ok(Shape::new(c.out_channels, h, w))
            }
            LayerKind::Pool(p) => {
                let h = conv_out_dim(input.height, p.kernel.0, p.stride.0, p.padding.0)
                    .ok_or_else(|| {
                        ModelError::shape_mismatch(
                            &self.name,
                            format!("pool kernel too large for input {input}"),
                        )
                    })?;
                let w = conv_out_dim(input.width, p.kernel.1, p.stride.1, p.padding.1).ok_or_else(
                    || {
                        ModelError::shape_mismatch(
                            &self.name,
                            format!("pool kernel too large for input {input}"),
                        )
                    },
                )?;
                Ok(Shape::new(input.channels, h, w))
            }
            LayerKind::Fc(fc) => {
                if input.elements() != fc.in_features {
                    return Err(ModelError::shape_mismatch(
                        &self.name,
                        format!(
                            "fc expects {} flattened features, got {} ({input})",
                            fc.in_features,
                            input.elements()
                        ),
                    ));
                }
                Ok(Shape::new(fc.out_features, 1, 1))
            }
        }
    }

    /// Input rows needed to produce output rows `out` (Eq. 3, extended
    /// with padding), clamped to the `in_height`-row input map.
    ///
    /// For a convolution/pool with vertical kernel `k`, stride `s`, and
    /// padding `p`, output row `r` reads input rows
    /// `[r*s - p, r*s - p + k)`; the result is the hull over `out`
    /// clamped to valid rows. FC layers always require every input row.
    pub fn input_rows(&self, out: Rows, in_height: usize) -> Rows {
        if out.is_empty() {
            return Rows::empty();
        }
        match &self.kind {
            LayerKind::Conv(ConvSpec {
                kernel,
                stride,
                padding,
                ..
            })
            | LayerKind::Pool(PoolSpec {
                kernel,
                stride,
                padding,
                ..
            }) => {
                let (k, s, p) = (kernel.0, stride.0, padding.0);
                let start = (out.start * s).saturating_sub(p).min(in_height);
                let end = ((out.end - 1) * s + k).saturating_sub(p).min(in_height);
                Rows::new(start, end.max(start))
            }
            LayerKind::Fc(_) => Rows::full(in_height),
        }
    }

    /// FLOPs to produce `rows` output rows of an output map with shape
    /// `out_shape` (Eq. 2, restricted to the row range).
    ///
    /// * Conv: `k_h * k_w * c_in * rows * w_out * c_out` multiply-accumulates.
    /// * Pool: `k_h * k_w * c * rows * w_out` comparisons/adds — tiny, but
    ///   counted so that pool-only stages never cost exactly zero.
    /// * FC: `in_features * out_features` (only meaningful for the full map).
    pub fn flops(&self, rows: usize, out_shape: Shape) -> f64 {
        match &self.kind {
            LayerKind::Conv(c) => {
                (c.kernel.0 * c.kernel.1 * c.in_per_group()) as f64
                    * (rows * out_shape.width * c.out_channels) as f64
            }
            LayerKind::Pool(p) => {
                (p.kernel.0 * p.kernel.1) as f64
                    * (out_shape.channels * rows * out_shape.width) as f64
            }
            LayerKind::Fc(fc) => {
                if rows == 0 {
                    0.0
                } else {
                    (fc.in_features * fc.out_features) as f64
                }
            }
        }
    }

    /// Number of learnable parameters (weights + biases).
    pub fn parameters(&self) -> usize {
        match &self.kind {
            LayerKind::Conv(c) => {
                c.kernel.0 * c.kernel.1 * c.in_per_group() * c.out_channels + c.out_channels
            }
            LayerKind::Pool(_) => 0,
            LayerKind::Fc(fc) => fc.in_features * fc.out_features + fc.out_features,
        }
    }
}

/// Standard convolution output-dimension formula:
/// `(n + 2p - k) / s + 1`, or `None` when the kernel does not fit.
pub(crate) fn conv_out_dim(n: usize, k: usize, s: usize, p: usize) -> Option<usize> {
    let padded = n + 2 * p;
    if padded < k || s == 0 {
        return None;
    }
    Some((padded - k) / s + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_shape_inference() {
        let l = Layer::conv("c", ConvSpec::square(3, 64, 3, 1, 1));
        let out = l.output_shape(Shape::new(3, 224, 224)).unwrap();
        assert_eq!(out, Shape::new(64, 224, 224));
    }

    #[test]
    fn strided_conv_halves() {
        let l = Layer::conv("c", ConvSpec::square(3, 32, 3, 2, 1));
        let out = l.output_shape(Shape::new(3, 224, 224)).unwrap();
        assert_eq!(out, Shape::new(32, 112, 112));
    }

    #[test]
    fn nonsquare_kernel_shape() {
        // InceptionV3-style 1x7 convolution.
        let l = Layer::conv(
            "c",
            ConvSpec {
                in_channels: 128,
                out_channels: 128,
                kernel: (1, 7),
                stride: (1, 1),
                padding: (0, 3),
                groups: 1,
            },
        );
        let out = l.output_shape(Shape::new(128, 17, 17)).unwrap();
        assert_eq!(out, Shape::new(128, 17, 17));
    }

    #[test]
    fn conv_rejects_channel_mismatch() {
        let l = Layer::conv("c", ConvSpec::square(3, 64, 3, 1, 1));
        assert!(l.output_shape(Shape::new(4, 10, 10)).is_err());
    }

    #[test]
    fn pool_shape_inference() {
        let l = Layer::pool("p", PoolSpec::max(2, 2));
        let out = l.output_shape(Shape::new(64, 224, 224)).unwrap();
        assert_eq!(out, Shape::new(64, 112, 112));
    }

    #[test]
    fn fc_flattens() {
        let l = Layer::fc("fc", 512 * 7 * 7, 4096);
        let out = l.output_shape(Shape::new(512, 7, 7)).unwrap();
        assert_eq!(out, Shape::new(4096, 1, 1));
    }

    #[test]
    fn fc_rejects_bad_flatten() {
        let l = Layer::fc("fc", 100, 10);
        assert!(l.output_shape(Shape::new(3, 10, 10)).is_err());
    }

    #[test]
    fn input_rows_3x3_stride1_pad1() {
        let l = Layer::conv("c", ConvSpec::square(3, 8, 3, 1, 1));
        // Interior rows need a 1-row halo on each side.
        assert_eq!(l.input_rows(Rows::new(4, 8), 20), Rows::new(3, 9));
        // Border rows get clamped.
        assert_eq!(l.input_rows(Rows::new(0, 4), 20), Rows::new(0, 5));
        assert_eq!(l.input_rows(Rows::new(16, 20), 20), Rows::new(15, 20));
    }

    #[test]
    fn input_rows_pool_2x2_stride2() {
        let l = Layer::pool("p", PoolSpec::max(2, 2));
        assert_eq!(l.input_rows(Rows::new(0, 5), 20), Rows::new(0, 10));
        assert_eq!(l.input_rows(Rows::new(5, 10), 20), Rows::new(10, 20));
    }

    #[test]
    fn input_rows_matches_paper_eq3_without_padding() {
        // Eq. 3: h_i = (h_{i+1} - 1) s + k, for an unpadded layer.
        let l = Layer::conv("c", ConvSpec::square(3, 8, 5, 2, 0));
        let out = Rows::new(0, 10);
        let input = l.input_rows(out, 1000);
        assert_eq!(input.len(), (10 - 1) * 2 + 5);
    }

    #[test]
    fn input_rows_empty_output() {
        let l = Layer::conv("c", ConvSpec::square(3, 8, 3, 1, 1));
        assert!(l.input_rows(Rows::empty(), 20).is_empty());
    }

    #[test]
    fn fc_needs_full_input() {
        let l = Layer::fc("fc", 100, 10);
        assert_eq!(l.input_rows(Rows::new(0, 1), 10), Rows::full(10));
    }

    #[test]
    fn conv_flops_match_eq2() {
        // Eq. 2: k^2 * c_{i-1} * w_i * h_i * c_i
        let l = Layer::conv("c", ConvSpec::square(64, 128, 3, 1, 1));
        let out = Shape::new(128, 56, 56);
        assert_eq!(l.flops(56, out), (3 * 3 * 64 * 56 * 56 * 128) as f64);
        // Restricted to 7 rows.
        assert_eq!(l.flops(7, out), (3 * 3 * 64 * 7 * 56 * 128) as f64);
    }

    #[test]
    fn pool_flops_are_small() {
        let pool = Layer::pool("p", PoolSpec::max(2, 2));
        let conv = Layer::conv("c", ConvSpec::square(64, 64, 3, 1, 1));
        let out = Shape::new(64, 112, 112);
        assert!(pool.flops(112, out) < conv.flops(112, out) / 100.0);
    }

    #[test]
    fn parameter_counts() {
        let l = Layer::conv("c", ConvSpec::square(3, 64, 3, 1, 1));
        assert_eq!(l.parameters(), 3 * 3 * 3 * 64 + 64);
        assert_eq!(Layer::pool("p", PoolSpec::max(2, 2)).parameters(), 0);
        assert_eq!(Layer::fc("f", 10, 5).parameters(), 55);
    }

    #[test]
    fn out_dim_formula() {
        assert_eq!(conv_out_dim(224, 3, 1, 1), Some(224));
        assert_eq!(conv_out_dim(224, 2, 2, 0), Some(112));
        assert_eq!(conv_out_dim(5, 7, 1, 0), None);
        assert_eq!(conv_out_dim(5, 7, 1, 1), Some(1));
    }
}
