//! Two-dimensional feature-map regions.
//!
//! PICO partitions along rows only (MoDNN-style strips); DeepThings —
//! one of the paper's baselines — "partitions the feature map into 2D
//! grids to further reduce memory overhead". This module provides the
//! rectangular-region arithmetic needed to support (and study) grid
//! partitioning: per-axis receptive-field back-propagation and FLOPs
//! accounting for a `rows x cols` tile.

use serde::{Deserialize, Serialize};

use crate::{rows_split_even, ConvSpec, LayerKind, PoolSpec, Rows, Shape};
use crate::{Block, Layer, Model, ModelError, Segment, Unit};

/// A rectangular region of a feature map: a row range and a column
/// range (both half-open, in global coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Region2 {
    /// Row interval.
    pub rows: Rows,
    /// Column interval ([`Rows`] doubles as a generic interval type).
    pub cols: Rows,
}

impl Region2 {
    /// Creates a region.
    pub fn new(rows: Rows, cols: Rows) -> Self {
        Region2 { rows, cols }
    }

    /// The whole `height x width` map.
    pub fn full(height: usize, width: usize) -> Self {
        Region2 {
            rows: Rows::full(height),
            cols: Rows::full(width),
        }
    }

    /// Number of elements per channel.
    pub fn area(&self) -> usize {
        self.rows.len() * self.cols.len()
    }

    /// Whether the region contains no elements.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty() || self.cols.is_empty()
    }

    /// Clamps both axes to a map of `height x width`.
    pub fn clamp_to(&self, height: usize, width: usize) -> Region2 {
        Region2 {
            rows: self.rows.clamp_to(height),
            cols: self.cols.clamp_to(width),
        }
    }

    /// Whether `other` lies fully within this region.
    pub fn contains(&self, other: Region2) -> bool {
        other.is_empty() || (self.rows.contains(other.rows) && self.cols.contains(other.cols))
    }

    /// Smallest region containing both.
    pub fn hull(&self, other: Region2) -> Region2 {
        Region2 {
            rows: self.rows.hull(other.rows),
            cols: self.cols.hull(other.cols),
        }
    }

    /// Bytes of `channels` channels of this region as f32.
    pub fn bytes(&self, channels: usize) -> usize {
        channels * self.area() * crate::BYTES_PER_ELEMENT
    }
}

impl std::fmt::Display for Region2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// Splits a `height x width` map into a `grid_rows x grid_cols` grid of
/// nearly-equal rectangular tiles, row-major.
///
/// # Panics
///
/// Panics if either grid dimension is zero.
pub fn grid_split_even(
    height: usize,
    width: usize,
    grid_rows: usize,
    grid_cols: usize,
) -> Vec<Region2> {
    let row_bands = rows_split_even(Rows::full(height), grid_rows);
    let col_bands = rows_split_even(Rows::full(width), grid_cols);
    let mut out = Vec::with_capacity(grid_rows * grid_cols);
    for r in &row_bands {
        for c in &col_bands {
            out.push(Region2::new(*r, *c));
        }
    }
    out
}

/// Horizontal analogue of [`Layer::input_rows`]: input columns needed to
/// produce output columns `out`, clamped to the `in_width`-column map.
pub(crate) fn layer_input_cols(layer: &Layer, out: Rows, in_width: usize) -> Rows {
    if out.is_empty() {
        return Rows::empty();
    }
    match &layer.kind {
        LayerKind::Conv(ConvSpec {
            kernel,
            stride,
            padding,
            ..
        })
        | LayerKind::Pool(PoolSpec {
            kernel,
            stride,
            padding,
            ..
        }) => {
            let (k, s, p) = (kernel.1, stride.1, padding.1);
            let start = (out.start * s).saturating_sub(p).min(in_width);
            let end = ((out.end - 1) * s + k).saturating_sub(p).min(in_width);
            Rows::new(start, end.max(start))
        }
        LayerKind::Fc(_) => Rows::full(in_width),
    }
}

impl Layer {
    /// Input region needed to produce output region `out` (both axes of
    /// Eq. 3), for an `input`-shaped map.
    pub fn input_region(&self, out: Region2, input: Shape) -> Region2 {
        Region2 {
            rows: self.input_rows(out.rows, input.height),
            cols: layer_input_cols(self, out.cols, input.width),
        }
    }

    /// FLOPs to produce output region `out` of a map with shape
    /// `out_shape` (Eq. 2 restricted to a rectangle).
    pub fn region_flops(&self, out: Region2, out_shape: Shape) -> f64 {
        let out = out.clamp_to(out_shape.height, out_shape.width);
        match &self.kind {
            LayerKind::Conv(c) => {
                (c.kernel.0 * c.kernel.1 * c.in_per_group()) as f64
                    * (out.area() * c.out_channels) as f64
            }
            LayerKind::Pool(p) => {
                (p.kernel.0 * p.kernel.1) as f64 * (out_shape.channels * out.area()) as f64
            }
            LayerKind::Fc(fc) => {
                if out.is_empty() {
                    0.0
                } else {
                    (fc.in_features * fc.out_features) as f64
                }
            }
        }
    }
}

impl Block {
    /// Input region required to produce output region `out`: the union
    /// hull over paths (both axes).
    pub fn input_region(&self, out: Region2, input: Shape) -> Result<Region2, ModelError> {
        let mut hull = Region2::new(Rows::empty(), Rows::empty());
        for path in &self.paths {
            let mut region = out;
            let mut shapes = Vec::with_capacity(path.len() + 1);
            shapes.push(input);
            for layer in path {
                let prev = *shapes.last().expect("shapes starts non-empty");
                shapes.push(layer.output_shape(prev)?);
            }
            for (l, layer) in path.iter().enumerate().rev() {
                region = layer.input_region(region, shapes[l]);
            }
            hull = hull.hull(region);
        }
        Ok(hull)
    }

    /// FLOPs to compute output region `out` of this block.
    pub fn region_flops(&self, out: Region2, input: Shape) -> Result<f64, ModelError> {
        let mut total = 0.0;
        for path in &self.paths {
            let mut shapes = Vec::with_capacity(path.len() + 1);
            shapes.push(input);
            for layer in path {
                let prev = *shapes.last().expect("shapes starts non-empty");
                shapes.push(layer.output_shape(prev)?);
            }
            let mut region = out;
            for (l, layer) in path.iter().enumerate().rev() {
                let out_shape = shapes[l + 1];
                let produced = region.clamp_to(out_shape.height, out_shape.width);
                total += layer.region_flops(produced, out_shape);
                region = layer.input_region(produced, shapes[l]);
            }
        }
        Ok(total)
    }
}

impl Unit {
    /// Input region required to produce output region `out`.
    pub fn input_region(&self, out: Region2, input: Shape) -> Region2 {
        match self {
            Unit::Layer(l) => l.input_region(out, input),
            Unit::Block(b) => b
                .input_region(out, input)
                .expect("input shape was validated at model construction"),
        }
    }

    /// FLOPs to produce output region `out`.
    pub fn region_flops(&self, out: Region2, input: Shape, output: Shape) -> f64 {
        let out = out.clamp_to(output.height, output.width);
        match self {
            Unit::Layer(l) => l.region_flops(out, output),
            Unit::Block(b) => b
                .region_flops(out, input)
                .expect("input shape was validated at model construction"),
        }
    }
}

impl Model {
    /// 2-D analogue of [`Model::segment_input_rows`]: the input region
    /// of segment `seg` required to produce output region `out`.
    ///
    /// # Panics
    ///
    /// Panics if `seg` is out of bounds.
    pub fn segment_input_region(&self, seg: Segment, out: Region2) -> Region2 {
        self.check_segment(seg).expect("segment out of bounds");
        let out_shape = self.unit_output_shape(seg.end - 1);
        let mut region = out.clamp_to(out_shape.height, out_shape.width);
        for i in seg.iter().rev() {
            region = self.unit(i).input_region(region, self.unit_input_shape(i));
        }
        region
    }

    /// 2-D analogue of [`Model::segment_row_trace`].
    ///
    /// # Panics
    ///
    /// Panics if `seg` is out of bounds.
    pub fn segment_region_trace(&self, seg: Segment, out: Region2) -> Vec<Region2> {
        let mut trace = Vec::new();
        self.segment_region_trace_into(seg, out, &mut trace);
        trace
    }

    /// [`Model::segment_region_trace`] into a caller-provided buffer
    /// (cleared first), so per-task hot paths can reuse its capacity
    /// instead of allocating a fresh trace every call.
    ///
    /// # Panics
    ///
    /// Panics if `seg` is out of bounds.
    pub fn segment_region_trace_into(&self, seg: Segment, out: Region2, trace: &mut Vec<Region2>) {
        self.check_segment(seg).expect("segment out of bounds");
        let out_shape = self.unit_output_shape(seg.end - 1);
        trace.clear();
        trace.resize(seg.len(), Region2::new(Rows::empty(), Rows::empty()));
        let mut region = out.clamp_to(out_shape.height, out_shape.width);
        for (k, i) in seg.iter().enumerate().rev() {
            trace[k] = region;
            region = self.unit(i).input_region(region, self.unit_input_shape(i));
        }
    }

    /// 2-D analogue of [`Model::segment_flops`]: FLOPs a device spends
    /// producing output region `out` of segment `seg`, halo included.
    ///
    /// # Panics
    ///
    /// Panics if `seg` is out of bounds.
    pub fn segment_region_flops(&self, seg: Segment, out: Region2) -> f64 {
        let trace = self.segment_region_trace(seg, out);
        let mut total = 0.0;
        for (k, i) in seg.iter().enumerate() {
            total += self.unit(i).region_flops(
                trace[k],
                self.unit_input_shape(i),
                self.unit_output_shape(i),
            );
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn region_basics() {
        let r = Region2::new(Rows::new(2, 6), Rows::new(1, 5));
        assert_eq!(r.area(), 16);
        assert!(!r.is_empty());
        assert!(r.contains(Region2::new(Rows::new(3, 4), Rows::new(2, 3))));
        assert_eq!(r.bytes(2), 2 * 16 * 4);
        assert_eq!(r.to_string(), "[2, 6)x[1, 5)");
    }

    #[test]
    fn grid_split_tiles_exactly() {
        let tiles = grid_split_even(10, 8, 2, 3);
        assert_eq!(tiles.len(), 6);
        let total: usize = tiles.iter().map(Region2::area).sum();
        assert_eq!(total, 80);
        // Row-major: first three tiles share the top row band.
        assert_eq!(tiles[0].rows, tiles[2].rows);
        assert_ne!(tiles[0].cols, tiles[1].cols);
    }

    #[test]
    fn region_receptive_field_is_separable() {
        // 2-D back-propagation must agree with the two 1-D ones.
        let m = zoo::mnist_toy();
        let seg = m.full_segment();
        let out = Region2::new(Rows::new(3, 9), Rows::new(2, 7));
        let region = m.segment_input_region(seg, out);
        assert_eq!(region.rows, m.segment_input_rows(seg, out.rows));
        // Columns back-propagate with the same arithmetic (square
        // kernels here), so the interval width matches.
        let col_like = m.segment_input_rows(seg, out.cols);
        assert_eq!(region.cols, col_like);
    }

    #[test]
    fn full_region_flops_match_row_api() {
        let m = zoo::mnist_toy();
        let seg = m.full_segment();
        let h = m.output_shape().height;
        let w = m.output_shape().width;
        let full2 = m.segment_region_flops(seg, Region2::full(h, w));
        let full1 = m.segment_flops(seg, Rows::full(h));
        assert!((full2 - full1).abs() < 1e-6);
    }

    #[test]
    fn strip_regions_match_row_api() {
        let m = zoo::toy(4);
        let seg = m.full_segment();
        let w = m.output_shape().width;
        let rows = Rows::new(10, 30);
        let strip = Region2::new(rows, Rows::full(w));
        assert!((m.segment_region_flops(seg, strip) - m.segment_flops(seg, rows)).abs() < 1e-6);
    }

    #[test]
    fn grid_tiles_have_perimeter_halo() {
        // An interior tile of a 3x3 conv needs a 1-element halo on all
        // four sides.
        let m = zoo::toy(1);
        let seg = m.full_segment();
        let tile = Region2::new(Rows::new(10, 20), Rows::new(10, 20));
        let need = m.segment_input_region(seg, tile);
        assert_eq!(need, Region2::new(Rows::new(9, 21), Rows::new(9, 21)));
    }

    #[test]
    fn nonsquare_kernels_have_asymmetric_halo() {
        // A 1x7 conv needs horizontal but no vertical halo.
        let l = Layer::conv(
            "c17",
            ConvSpec {
                in_channels: 4,
                out_channels: 4,
                kernel: (1, 7),
                stride: (1, 1),
                padding: (0, 3),
                groups: 1,
            },
        );
        let input = Shape::new(4, 17, 17);
        let out = Region2::new(Rows::new(5, 9), Rows::new(5, 9));
        let need = l.input_region(out, input);
        assert_eq!(need.rows, Rows::new(5, 9));
        assert_eq!(need.cols, Rows::new(2, 12));
    }

    #[test]
    fn grid_total_flops_below_strip_total_for_deep_fusion() {
        // DeepThings' motivation: for deep fusion on p devices, a
        // near-square grid duplicates fewer halo elements than p thin
        // strips (perimeter vs full-width overlap).
        let m = zoo::vgg16().features();
        let seg = Segment::new(0, 10);
        let out = m.unit_output_shape(9);
        let strips = grid_split_even(out.height, out.width, 8, 1);
        let grid = grid_split_even(out.height, out.width, 4, 2);
        let strip_total: f64 = strips.iter().map(|r| m.segment_region_flops(seg, *r)).sum();
        let grid_total: f64 = grid.iter().map(|r| m.segment_region_flops(seg, *r)).sum();
        assert!(
            grid_total < strip_total,
            "grid {grid_total:.3e} vs strips {strip_total:.3e}"
        );
    }

    #[test]
    fn blocks_support_regions() {
        let m = zoo::resnet34().features();
        let seg = Segment::new(2, 5); // three residual blocks at 56x56
        let tile = Region2::new(Rows::new(10, 20), Rows::new(20, 40));
        let flops = m.segment_region_flops(seg, tile);
        assert!(flops > 0.0);
        let need = m.segment_input_region(seg, tile);
        assert!(need.contains(tile));
    }
}
