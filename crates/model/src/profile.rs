//! Per-layer communication/computation profiling (the data behind
//! Fig. 2 of the paper).

use serde::{Deserialize, Serialize};

use crate::{Model, Rows, Unit};

/// Computation and communication footprint of one unit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitProfile {
    /// Unit index within the model.
    pub index: usize,
    /// Unit name.
    pub name: String,
    /// FLOPs to compute the full output map.
    pub flops: f64,
    /// Output feature-map size in bytes (what a layer-wise scheme must
    /// gather/scatter after this unit).
    pub output_bytes: usize,
    /// Fraction of the model's total FLOPs.
    pub flops_share: f64,
    /// Fraction of the model's total inter-layer traffic.
    pub comm_share: f64,
    /// Whether the unit is a convolution (or a conv-bearing block).
    pub is_conv: bool,
}

/// Profiles every unit of `model`: FLOPs, output bytes, and their shares
/// of the model totals.
///
/// # Example
///
/// ```
/// use pico_model::{profile::layer_profile, zoo};
///
/// let profs = layer_profile(&zoo::vgg16());
/// let conv_share: f64 = profs.iter().filter(|p| p.is_conv).map(|p| p.flops_share).sum();
/// // The paper reports conv layers provide 99.19% of VGG16 computation.
/// assert!(conv_share > 0.99);
/// ```
pub fn layer_profile(model: &Model) -> Vec<UnitProfile> {
    let mut raw = Vec::with_capacity(model.len());
    for i in 0..model.len() {
        let out = model.unit_output_shape(i);
        let unit = model.unit(i);
        let flops = unit.flops(Rows::full(out.height), model.unit_input_shape(i), out);
        raw.push((i, unit.name().to_owned(), flops, out.bytes(), is_conv(unit)));
    }
    let total_flops: f64 = raw.iter().map(|r| r.2).sum();
    let total_bytes: f64 = raw.iter().map(|r| r.3 as f64).sum();
    raw.into_iter()
        .map(|(index, name, flops, output_bytes, conv)| UnitProfile {
            index,
            name,
            flops,
            output_bytes,
            flops_share: if total_flops > 0.0 {
                flops / total_flops
            } else {
                0.0
            },
            comm_share: if total_bytes > 0.0 {
                output_bytes as f64 / total_bytes
            } else {
                0.0
            },
            is_conv: conv,
        })
        .collect()
}

fn is_conv(unit: &Unit) -> bool {
    match unit {
        Unit::Layer(l) => l.is_conv(),
        Unit::Block(_) => true,
    }
}

/// Fraction of total model FLOPs contributed by convolution units
/// (the paper's "conv layers provide 99.19% computation in VGG16 and
/// 99.59% in YOLOv2").
pub fn conv_flops_share(model: &Model) -> f64 {
    layer_profile(model)
        .iter()
        .filter(|p| p.is_conv)
        .map(|p| p.flops_share)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ConvSpec, Layer, Shape};

    fn model() -> Model {
        Model::new(
            "m",
            Shape::new(3, 8, 8),
            vec![
                Layer::conv("c1", ConvSpec::square(3, 4, 3, 1, 1)).into(),
                Layer::pool("p1", crate::PoolSpec::max(2, 2)).into(),
                Layer::fc("fc", 4 * 4 * 4, 10).into(),
            ],
        )
        .unwrap()
    }

    #[test]
    fn shares_sum_to_one() {
        let profs = layer_profile(&model());
        let f: f64 = profs.iter().map(|p| p.flops_share).sum();
        let c: f64 = profs.iter().map(|p| p.comm_share).sum();
        assert!((f - 1.0).abs() < 1e-9);
        assert!((c - 1.0).abs() < 1e-9);
    }

    #[test]
    fn profile_has_one_entry_per_unit() {
        let m = model();
        let profs = layer_profile(&m);
        assert_eq!(profs.len(), m.len());
        assert_eq!(profs[0].name, "c1");
        assert!(profs[0].is_conv);
        assert!(!profs[1].is_conv);
    }

    #[test]
    fn output_bytes_match_shapes() {
        let m = model();
        let profs = layer_profile(&m);
        assert_eq!(profs[0].output_bytes, Shape::new(4, 8, 8).bytes());
        assert_eq!(profs[1].output_bytes, Shape::new(4, 4, 4).bytes());
    }

    #[test]
    fn conv_dominates_flops() {
        assert!(conv_flops_share(&model()) > 0.5);
    }
}
