use crate::{ConvSpec, Layer, Model, PoolSpec, Shape, Unit};

/// AlexNet (Krizhevsky et al., 2012) with a 3x227x227 input — the
/// original *grouped*-convolution network (conv2/4/5 used two groups to
/// fit two GPUs), included as an extension to exercise `groups > 1`
/// planning end to end: 5 conv + 3 pool + 3 fc.
pub fn alexnet() -> Model {
    let units: Vec<Unit> = vec![
        Layer::conv("conv1", ConvSpec::square(3, 96, 11, 4, 0)).into(),
        Layer::pool("pool1", PoolSpec::max(3, 2)).into(),
        Layer::conv(
            "conv2",
            ConvSpec {
                in_channels: 96,
                out_channels: 256,
                kernel: (5, 5),
                stride: (1, 1),
                padding: (2, 2),
                groups: 2,
            },
        )
        .into(),
        Layer::pool("pool2", PoolSpec::max(3, 2)).into(),
        Layer::conv("conv3", ConvSpec::square(256, 384, 3, 1, 1)).into(),
        Layer::conv(
            "conv4",
            ConvSpec {
                in_channels: 384,
                out_channels: 384,
                kernel: (3, 3),
                stride: (1, 1),
                padding: (1, 1),
                groups: 2,
            },
        )
        .into(),
        Layer::conv(
            "conv5",
            ConvSpec {
                in_channels: 384,
                out_channels: 256,
                kernel: (3, 3),
                stride: (1, 1),
                padding: (1, 1),
                groups: 2,
            },
        )
        .into(),
        Layer::pool("pool5", PoolSpec::max(3, 2)).into(),
        Layer::fc("fc6", 256 * 6 * 6, 4096).into(),
        Layer::fc("fc7", 4096, 4096).into(),
        Layer::fc("fc8", 4096, 1000).into(),
    ];
    Model::new("alexnet", Shape::new(3, 227, 227), units)
        .expect("alexnet definition is internally consistent")
}

/// Tiny-YOLO (the YOLOv2-tiny detection head): 9 conv + 6 pool on a
/// 3x416x416 input — the detector people actually deploy on Pi-class
/// hardware.
pub fn tiny_yolo() -> Model {
    let mut units: Vec<Unit> = Vec::new();
    let mut in_ch = 3;
    // (out channels, pool stride after) for the backbone.
    let body: [(usize, usize); 6] = [(16, 2), (32, 2), (64, 2), (128, 2), (256, 2), (512, 1)];
    for (i, (out_ch, pool_stride)) in body.iter().enumerate() {
        units.push(
            Layer::conv(
                format!("conv{}", i + 1),
                ConvSpec::square(in_ch, *out_ch, 3, 1, 1),
            )
            .into(),
        );
        // YOLOv2-tiny's last pool is stride 1 (padding keeps 13x13).
        if *pool_stride == 2 {
            units.push(Layer::pool(format!("pool{}", i + 1), PoolSpec::max(2, 2)).into());
        } else {
            units.push(
                Layer::pool(
                    format!("pool{}", i + 1),
                    crate::PoolSpec {
                        kind: crate::PoolKind::Max,
                        kernel: (2, 2),
                        stride: (1, 1),
                        padding: (1, 1),
                    },
                )
                .into(),
            );
        }
        in_ch = *out_ch;
    }
    units.push(Layer::conv("conv7", ConvSpec::square(512, 1024, 3, 1, 1)).into());
    units.push(Layer::conv("conv8", ConvSpec::square(1024, 512, 3, 1, 1)).into());
    units.push(Layer::conv("conv9", ConvSpec::pointwise(512, 425)).into());
    Model::new("tiny_yolo", Shape::new(3, 416, 416), units)
        .expect("tiny_yolo definition is internally consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_shapes() {
        let m = alexnet();
        // conv1: (227-11)/4+1 = 55; pool1: 27; pool2: 13; pool5: 6.
        assert_eq!(m.unit_output_shape(0).height, 55);
        assert_eq!(m.unit_output_shape(1).height, 27);
        assert_eq!(m.unit_output_shape(3).height, 13);
        assert_eq!(m.unit_output_shape(7), Shape::new(256, 6, 6));
        assert_eq!(m.output_shape(), Shape::new(1000, 1, 1));
    }

    #[test]
    fn alexnet_parameters_are_about_61m() {
        let p = alexnet().parameters();
        assert!((58_000_000..64_000_000).contains(&p), "got {p}");
    }

    #[test]
    fn alexnet_grouping_halves_conv2_cost() {
        // conv2 with groups=2 costs half of its dense equivalent.
        let m = alexnet();
        let out = m.unit_output_shape(2);
        let grouped = m
            .unit(2)
            .flops(crate::Rows::full(out.height), m.unit_input_shape(2), out);
        let dense = (5 * 5 * 96 * 27 * 27 * 256) as f64;
        assert!((grouped - dense / 2.0).abs() < 1.0);
    }

    #[test]
    fn tiny_yolo_shapes() {
        let m = tiny_yolo();
        // 416 / 2^5 = 13; the stride-1 pool with padding gives 14 in our
        // formula ((13 + 2 - 2)/1 + 1), matching the darknet "same" pad.
        let final_grid = m.output_shape();
        assert_eq!(final_grid.channels, 425);
        assert!(final_grid.height == 13 || final_grid.height == 14);
    }

    #[test]
    fn tiny_yolo_is_light() {
        // ~5.5 GMACs at 416 - an order of magnitude under YOLOv2.
        assert!(tiny_yolo().total_flops() < super::super::yolov2().total_flops() / 4.0);
    }
}
