//! Architecture-accurate reproductions of the models the paper
//! evaluates.
//!
//! Weights are irrelevant to PICO's planning (the cost model depends
//! only on layer shapes), so the zoo provides layer graphs only; the
//! `pico-tensor` crate attaches synthetic weights when real execution is
//! needed.
//!
//! | Model | Paper role | Units |
//! |---|---|---|
//! | [`vgg16`] | chain CNN, Figs. 2/4/8/10, Table I | 13 conv + 5 pool + 3 fc |
//! | [`yolov2`] | deep chain CNN, Figs. 2/9/11, Table I | 23 conv + 5 pool |
//! | [`resnet34`] | graph CNN (residual blocks), Fig. 12 | 16 blocks + stem + head |
//! | [`inception_v3`] | graph CNN (inception blocks), Fig. 12 | 11 blocks + stem + head |
//! | [`mobilenet_v1`] | depthwise-separable edge CNN (extension) | 27 conv + pool + fc |
//! | [`alexnet`] | the original grouped-conv CNN (extension) | 5 conv + 3 pool + 3 fc |
//! | [`tiny_yolo`] | YOLOv2-tiny, the realistic Pi-class detector (extension) | 9 conv + 6 pool |
//! | [`toy`] | BFS-vs-PICO comparison, Table II / Fig. 13 | configurable |
//! | [`identical_1x1`] | NP-hardness construction (Thm. 1) | n identical 1x1 convs |

mod alexnet;
mod inception;
mod mobilenet;
mod resnet;
mod toy;
mod vgg;
mod yolo;

pub use alexnet::{alexnet, tiny_yolo};
pub use inception::inception_v3;
pub use mobilenet::mobilenet_v1;
pub use resnet::resnet34;
pub use toy::{identical_1x1, mnist_toy, toy};
pub use vgg::vgg16;
pub use yolo::yolov2;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::conv_flops_share;

    #[test]
    fn vgg16_layer_counts_match_paper() {
        let m = vgg16();
        let conv = m
            .units()
            .iter()
            .filter(|u| matches!(u, crate::Unit::Layer(l) if l.is_conv()))
            .count();
        let pool = m
            .units()
            .iter()
            .filter(|u| matches!(u, crate::Unit::Layer(l) if l.is_pool()))
            .count();
        let fc = m
            .units()
            .iter()
            .filter(|u| matches!(u, crate::Unit::Layer(l) if l.is_fc()))
            .count();
        assert_eq!((conv, pool, fc), (13, 5, 3));
    }

    #[test]
    fn vgg16_flops_are_about_15_gmacs() {
        // Published VGG16 multiply-accumulate count is ~15.5 G.
        let flops = vgg16().total_flops();
        assert!((14.0e9..17.0e9).contains(&flops), "got {flops:e}");
    }

    #[test]
    fn vgg16_conv_share_matches_paper() {
        // Paper: conv layers provide 99.19% of VGG16 computation.
        let share = conv_flops_share(&vgg16());
        assert!((0.985..0.995).contains(&share), "got {share}");
    }

    #[test]
    fn yolov2_layer_counts_match_paper() {
        let m = yolov2();
        let conv = m
            .units()
            .iter()
            .filter(|u| matches!(u, crate::Unit::Layer(l) if l.is_conv()))
            .count();
        let pool = m
            .units()
            .iter()
            .filter(|u| matches!(u, crate::Unit::Layer(l) if l.is_pool()))
            .count();
        assert_eq!((conv, pool), (23, 5));
    }

    #[test]
    fn yolov2_conv_share_matches_paper() {
        // Paper: conv layers provide 99.59% of YOLOv2 computation.
        let share = conv_flops_share(&yolov2());
        assert!(share > 0.99, "got {share}");
    }

    #[test]
    fn yolov2_deeper_than_vgg() {
        // "There are 23 conv and 5 pooling layers in YOLO, nearly twice
        // of VGG-16", and fewer parameters (1x1 convs replace FC).
        assert!(yolov2().features().layer_count() > vgg16().features().layer_count());
        assert!(yolov2().parameters() < vgg16().parameters());
    }

    #[test]
    fn resnet34_has_16_residual_blocks() {
        let m = resnet34();
        let blocks = m
            .units()
            .iter()
            .filter(|u| matches!(u, crate::Unit::Block(_)))
            .count();
        assert_eq!(blocks, 16);
        // 34 weighted layers per the paper's naming: 33 conv + 1 fc
        // (projection shortcuts add 3 more convs).
        assert_eq!(m.output_shape(), crate::Shape::new(1000, 1, 1));
    }

    #[test]
    fn resnet34_flops_are_about_3_6_gmacs() {
        let flops = resnet34().total_flops();
        assert!((3.0e9..4.5e9).contains(&flops), "got {flops:e}");
    }

    #[test]
    fn inception_v3_output_and_blocks() {
        let m = inception_v3();
        let blocks = m
            .units()
            .iter()
            .filter(|u| matches!(u, crate::Unit::Block(_)))
            .count();
        assert_eq!(blocks, 11); // 3 A + redA + 4 B + redB + 2 C
        assert_eq!(m.output_shape(), crate::Shape::new(1000, 1, 1));
    }

    #[test]
    fn inception_v3_flops_are_about_6_gmacs() {
        // Published ~5.7 GMACs; our flattened inception-C duplicates a
        // shared 1x1/3x3 prefix, so allow a slightly wider band.
        let flops = inception_v3().total_flops();
        assert!((5.0e9..8.0e9).contains(&flops), "got {flops:e}");
    }

    #[test]
    fn inception_blocks_have_more_layers_than_residual_blocks() {
        // The paper attributes InceptionV3's smaller speedup to its
        // blocks containing more layers than residual blocks.
        let avg_layers = |m: &crate::Model| {
            let blocks: Vec<_> = m
                .units()
                .iter()
                .filter_map(|u| match u {
                    crate::Unit::Block(b) => Some(b.layer_count()),
                    _ => None,
                })
                .collect();
            blocks.iter().sum::<usize>() as f64 / blocks.len() as f64
        };
        assert!(avg_layers(&inception_v3()) > avg_layers(&resnet34()));
    }

    #[test]
    fn toy_counts() {
        let m = toy(8);
        let conv = m
            .units()
            .iter()
            .filter(|u| matches!(u, crate::Unit::Layer(l) if l.is_conv()))
            .count();
        assert_eq!(conv, 8);
        assert_eq!(m.len(), 8);
    }

    #[test]
    fn mnist_toy_matches_fig13_description() {
        // "a tiny model with 8 conv layers and 2 pooling layers ...
        // input images from the standard 64x64 MINIST dataset".
        let m = mnist_toy();
        let conv = m
            .units()
            .iter()
            .filter(|u| matches!(u, crate::Unit::Layer(l) if l.is_conv()))
            .count();
        let pool = m
            .units()
            .iter()
            .filter(|u| matches!(u, crate::Unit::Layer(l) if l.is_pool()))
            .count();
        assert_eq!((conv, pool), (8, 2));
        assert_eq!(m.input_shape().height, 64);
    }

    #[test]
    fn identical_1x1_units_have_equal_cost() {
        let m = identical_1x1(6);
        let costs: Vec<f64> = (0..m.len())
            .map(|i| {
                m.unit(i).flops(
                    crate::Rows::full(m.unit_output_shape(i).height),
                    m.unit_input_shape(i),
                    m.unit_output_shape(i),
                )
            })
            .collect();
        for c in &costs {
            assert_eq!(*c, costs[0]);
        }
    }

    #[test]
    fn identical_1x1_has_no_halo() {
        // The Theorem 1 construction: 1x1 kernels guarantee no
        // overlapped partitions.
        let m = identical_1x1(6);
        let rows = m.segment_input_rows(m.full_segment(), crate::Rows::new(10, 20));
        assert_eq!(rows, crate::Rows::new(10, 20));
    }

    #[test]
    fn all_zoo_models_have_positive_flops() {
        for m in [
            vgg16(),
            yolov2(),
            resnet34(),
            inception_v3(),
            mobilenet_v1(),
            alexnet(),
            tiny_yolo(),
            toy(4),
            mnist_toy(),
        ] {
            assert!(m.total_flops() > 0.0, "{} has zero flops", m.name());
        }
    }
}
