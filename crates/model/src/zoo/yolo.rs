use crate::{ConvSpec, Layer, Model, PoolSpec, Shape, Unit};

/// YOLOv2 (Redmon & Farhadi, 2017) with a 3x448x448 input, as the chain
/// of 23 convolution and 5 pooling layers the paper describes
/// (Table I: "23 conv + 5 pool", input 448x448).
///
/// The Darknet19 backbone is reproduced exactly. The detection head's
/// passthrough ("reorg") connection is linearized: the concatenation of
/// the reorganized mid-level features is modeled as a 1x1 expansion to
/// 1280 channels on the main path, preserving the 23-conv count and the
/// FLOPs of the 1280-channel 3x3 head convolution. A chain model is what
/// the paper's planner consumes ("VGG16 is a typical chain CNN" — YOLOv2
/// is treated the same way).
pub fn yolov2() -> Model {
    let mut units: Vec<Unit> = Vec::new();
    let mut n = 0usize;
    let mut conv = |units: &mut Vec<Unit>, spec: ConvSpec| {
        n += 1;
        units.push(Layer::conv(format!("conv{n}"), spec).into());
    };

    // Darknet19 backbone (18 conv + 5 pool at detection resolution).
    conv(&mut units, ConvSpec::square(3, 32, 3, 1, 1));
    units.push(Layer::pool("pool1", PoolSpec::max(2, 2)).into());
    conv(&mut units, ConvSpec::square(32, 64, 3, 1, 1));
    units.push(Layer::pool("pool2", PoolSpec::max(2, 2)).into());
    conv(&mut units, ConvSpec::square(64, 128, 3, 1, 1));
    conv(&mut units, ConvSpec::pointwise(128, 64));
    conv(&mut units, ConvSpec::square(64, 128, 3, 1, 1));
    units.push(Layer::pool("pool3", PoolSpec::max(2, 2)).into());
    conv(&mut units, ConvSpec::square(128, 256, 3, 1, 1));
    conv(&mut units, ConvSpec::pointwise(256, 128));
    conv(&mut units, ConvSpec::square(128, 256, 3, 1, 1));
    units.push(Layer::pool("pool4", PoolSpec::max(2, 2)).into());
    conv(&mut units, ConvSpec::square(256, 512, 3, 1, 1));
    conv(&mut units, ConvSpec::pointwise(512, 256));
    conv(&mut units, ConvSpec::square(256, 512, 3, 1, 1));
    conv(&mut units, ConvSpec::pointwise(512, 256));
    conv(&mut units, ConvSpec::square(256, 512, 3, 1, 1));
    units.push(Layer::pool("pool5", PoolSpec::max(2, 2)).into());
    conv(&mut units, ConvSpec::square(512, 1024, 3, 1, 1));
    conv(&mut units, ConvSpec::pointwise(1024, 512));
    conv(&mut units, ConvSpec::square(512, 1024, 3, 1, 1));
    conv(&mut units, ConvSpec::pointwise(1024, 512));
    conv(&mut units, ConvSpec::square(512, 1024, 3, 1, 1));

    // Detection head (5 conv), passthrough linearized as a 1x1 -> 1280.
    conv(&mut units, ConvSpec::square(1024, 1024, 3, 1, 1));
    conv(&mut units, ConvSpec::square(1024, 1024, 3, 1, 1));
    conv(&mut units, ConvSpec::pointwise(1024, 1280));
    conv(&mut units, ConvSpec::square(1280, 1024, 3, 1, 1));
    conv(&mut units, ConvSpec::pointwise(1024, 425));

    Model::new("yolov2", Shape::new(3, 448, 448), units)
        .expect("yolov2 definition is internally consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_grid_is_14x14() {
        // 448 / 2^5 = 14; 5 anchors x (5 + 80) = 425 channels.
        assert_eq!(yolov2().output_shape(), Shape::new(425, 14, 14));
    }

    #[test]
    fn features_equal_whole_model() {
        // No FC layers: features() is the full 28-unit chain.
        assert_eq!(yolov2().features().len(), yolov2().len());
        assert_eq!(yolov2().len(), 28);
    }

    #[test]
    fn flops_are_tens_of_gmacs() {
        // YOLOv2@448 is ~30+ GMACs (deeper and wider input than VGG16).
        let flops = yolov2().total_flops();
        assert!(flops > vgg16_flops(), "got {flops:e}");
    }

    fn vgg16_flops() -> f64 {
        super::super::vgg16().total_flops()
    }
}
