use crate::{Block, ConvSpec, Layer, Merge, Model, Path, PoolKind, PoolSpec, Shape, Unit};

fn conv(name: &str, spec: ConvSpec) -> Layer {
    Layer::conv(name, spec)
}

fn avgpool3_same(name: &str) -> Layer {
    Layer::pool(
        name,
        PoolSpec {
            kind: PoolKind::Avg,
            kernel: (3, 3),
            stride: (1, 1),
            padding: (1, 1),
        },
    )
}

fn maxpool3_s2(name: &str) -> Layer {
    Layer::pool(name, PoolSpec::max(3, 2))
}

/// 1x7 convolution ("same" padding) — the non-square kernels the paper
/// calls out as the reason it moved off Darknet.
fn conv_1x7(name: &str, in_ch: usize, out_ch: usize) -> Layer {
    Layer::conv(
        name,
        ConvSpec {
            in_channels: in_ch,
            out_channels: out_ch,
            kernel: (1, 7),
            stride: (1, 1),
            padding: (0, 3),
            groups: 1,
        },
    )
}

/// 7x1 convolution ("same" padding).
fn conv_7x1(name: &str, in_ch: usize, out_ch: usize) -> Layer {
    Layer::conv(
        name,
        ConvSpec {
            in_channels: in_ch,
            out_channels: out_ch,
            kernel: (7, 1),
            stride: (1, 1),
            padding: (3, 0),
            groups: 1,
        },
    )
}

fn inception_a(name: &str, in_ch: usize, pool_ch: usize) -> Block {
    let paths: Vec<Path> = vec![
        vec![conv(&format!("{name}_1x1"), ConvSpec::pointwise(in_ch, 64))],
        vec![
            conv(&format!("{name}_5x5a"), ConvSpec::pointwise(in_ch, 48)),
            conv(&format!("{name}_5x5b"), ConvSpec::square(48, 64, 5, 1, 2)),
        ],
        vec![
            conv(&format!("{name}_3x3a"), ConvSpec::pointwise(in_ch, 64)),
            conv(&format!("{name}_3x3b"), ConvSpec::square(64, 96, 3, 1, 1)),
            conv(&format!("{name}_3x3c"), ConvSpec::square(96, 96, 3, 1, 1)),
        ],
        vec![
            avgpool3_same(&format!("{name}_pool")),
            conv(
                &format!("{name}_poolproj"),
                ConvSpec::pointwise(in_ch, pool_ch),
            ),
        ],
    ];
    Block::new(name, paths, Merge::Concat)
}

fn reduction_a(name: &str, in_ch: usize) -> Block {
    let paths: Vec<Path> = vec![
        vec![conv(
            &format!("{name}_3x3"),
            ConvSpec::square(in_ch, 384, 3, 2, 0),
        )],
        vec![
            conv(&format!("{name}_dbl_a"), ConvSpec::pointwise(in_ch, 64)),
            conv(&format!("{name}_dbl_b"), ConvSpec::square(64, 96, 3, 1, 1)),
            conv(&format!("{name}_dbl_c"), ConvSpec::square(96, 96, 3, 2, 0)),
        ],
        vec![maxpool3_s2(&format!("{name}_pool"))],
    ];
    Block::new(name, paths, Merge::Concat)
}

fn inception_b(name: &str, in_ch: usize, c7: usize) -> Block {
    let paths: Vec<Path> = vec![
        vec![conv(
            &format!("{name}_1x1"),
            ConvSpec::pointwise(in_ch, 192),
        )],
        vec![
            conv(&format!("{name}_7a"), ConvSpec::pointwise(in_ch, c7)),
            conv_1x7(&format!("{name}_7b"), c7, c7),
            conv_7x1(&format!("{name}_7c"), c7, 192),
        ],
        vec![
            conv(&format!("{name}_d7a"), ConvSpec::pointwise(in_ch, c7)),
            conv_7x1(&format!("{name}_d7b"), c7, c7),
            conv_1x7(&format!("{name}_d7c"), c7, c7),
            conv_7x1(&format!("{name}_d7d"), c7, c7),
            conv_1x7(&format!("{name}_d7e"), c7, 192),
        ],
        vec![
            avgpool3_same(&format!("{name}_pool")),
            conv(&format!("{name}_poolproj"), ConvSpec::pointwise(in_ch, 192)),
        ],
    ];
    Block::new(name, paths, Merge::Concat)
}

fn reduction_b(name: &str, in_ch: usize) -> Block {
    let paths: Vec<Path> = vec![
        vec![
            conv(&format!("{name}_3x3a"), ConvSpec::pointwise(in_ch, 192)),
            conv(&format!("{name}_3x3b"), ConvSpec::square(192, 320, 3, 2, 0)),
        ],
        vec![
            conv(&format!("{name}_7x7a"), ConvSpec::pointwise(in_ch, 192)),
            conv_1x7(&format!("{name}_7x7b"), 192, 192),
            conv_7x1(&format!("{name}_7x7c"), 192, 192),
            conv(&format!("{name}_7x7d"), ConvSpec::square(192, 192, 3, 2, 0)),
        ],
        vec![maxpool3_s2(&format!("{name}_pool"))],
    ];
    Block::new(name, paths, Merge::Concat)
}

/// Inception-C with the nested 1x3/3x1 fan-out flattened into separate
/// paths. The shared 1x1 (and 3x3) prefixes are duplicated per flattened
/// path, slightly overcounting FLOPs (< 5% of the block) — acceptable
/// for the shape-level reproduction; documented in DESIGN.md.
fn inception_c(name: &str, in_ch: usize) -> Block {
    let paths: Vec<Path> = vec![
        vec![conv(
            &format!("{name}_1x1"),
            ConvSpec::pointwise(in_ch, 320),
        )],
        vec![
            conv(&format!("{name}_3a"), ConvSpec::pointwise(in_ch, 384)),
            Layer::conv(
                format!("{name}_3b_1x3"),
                ConvSpec {
                    in_channels: 384,
                    out_channels: 384,
                    kernel: (1, 3),
                    stride: (1, 1),
                    padding: (0, 1),
                    groups: 1,
                },
            ),
        ],
        vec![
            conv(&format!("{name}_3a2"), ConvSpec::pointwise(in_ch, 384)),
            Layer::conv(
                format!("{name}_3b_3x1"),
                ConvSpec {
                    in_channels: 384,
                    out_channels: 384,
                    kernel: (3, 1),
                    stride: (1, 1),
                    padding: (1, 0),
                    groups: 1,
                },
            ),
        ],
        vec![
            conv(&format!("{name}_d3a"), ConvSpec::pointwise(in_ch, 448)),
            conv(&format!("{name}_d3b"), ConvSpec::square(448, 384, 3, 1, 1)),
            Layer::conv(
                format!("{name}_d3c_1x3"),
                ConvSpec {
                    in_channels: 384,
                    out_channels: 384,
                    kernel: (1, 3),
                    stride: (1, 1),
                    padding: (0, 1),
                    groups: 1,
                },
            ),
        ],
        vec![
            conv(&format!("{name}_d3a2"), ConvSpec::pointwise(in_ch, 448)),
            conv(&format!("{name}_d3b2"), ConvSpec::square(448, 384, 3, 1, 1)),
            Layer::conv(
                format!("{name}_d3c_3x1"),
                ConvSpec {
                    in_channels: 384,
                    out_channels: 384,
                    kernel: (3, 1),
                    stride: (1, 1),
                    padding: (1, 0),
                    groups: 1,
                },
            ),
        ],
        vec![
            avgpool3_same(&format!("{name}_pool")),
            conv(&format!("{name}_poolproj"), ConvSpec::pointwise(in_ch, 192)),
        ],
    ];
    Block::new(name, paths, Merge::Concat)
}

/// InceptionV3 (Szegedy et al.) with a 3x299x299 input: a convolutional
/// stem, 3 Inception-A, a grid reduction, 4 Inception-B (with the 1x7 /
/// 7x1 factorized convolutions the paper highlights), a second
/// reduction, 2 Inception-C blocks, global average pooling, and a
/// 1000-way classifier.
///
/// Each inception block is one planning [`Unit`] (Sec. IV-B: "considering
/// each block as a special layer").
pub fn inception_v3() -> Model {
    // Stem: 299 -> 149 -> 147 -> 147 -> 73 -> 73 -> 71 -> 35.
    let mut units: Vec<Unit> = vec![conv("stem1", ConvSpec::square(3, 32, 3, 2, 0)).into()];
    units.push(conv("stem2", ConvSpec::square(32, 32, 3, 1, 0)).into());
    units.push(conv("stem3", ConvSpec::square(32, 64, 3, 1, 1)).into());
    units.push(maxpool3_s2("stem_pool1").into());
    units.push(conv("stem4", ConvSpec::pointwise(64, 80)).into());
    units.push(conv("stem5", ConvSpec::square(80, 192, 3, 1, 0)).into());
    units.push(maxpool3_s2("stem_pool2").into());

    units.push(inception_a("mixed_5b", 192, 32).into()); // -> 256
    units.push(inception_a("mixed_5c", 256, 64).into()); // -> 288
    units.push(inception_a("mixed_5d", 288, 64).into()); // -> 288
    units.push(reduction_a("mixed_6a", 288).into()); // 35 -> 17, -> 768
    units.push(inception_b("mixed_6b", 768, 128).into());
    units.push(inception_b("mixed_6c", 768, 160).into());
    units.push(inception_b("mixed_6d", 768, 160).into());
    units.push(inception_b("mixed_6e", 768, 192).into());
    units.push(reduction_b("mixed_7a", 768).into()); // 17 -> 8, -> 1280
    units.push(inception_c("mixed_7b", 1280).into()); // -> 2048
    units.push(inception_c("mixed_7c", 2048).into()); // -> 2048

    units.push(Layer::pool("avgpool", PoolSpec::avg(8, 1)).into());
    units.push(Layer::fc("fc", 2048, 1000).into());
    Model::new("inception_v3", Shape::new(3, 299, 299), units)
        .expect("inception_v3 definition is internally consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_sizes_match_reference() {
        let m = inception_v3();
        // After stem: 192 x 35 x 35.
        assert_eq!(m.unit_output_shape(6), Shape::new(192, 35, 35));
        // After mixed_5d: 288 x 35 x 35.
        assert_eq!(m.unit_output_shape(9), Shape::new(288, 35, 35));
        // After reduction A: 768 x 17 x 17.
        assert_eq!(m.unit_output_shape(10), Shape::new(768, 17, 17));
        // After reduction B: 1280 x 8 x 8.
        assert_eq!(m.unit_output_shape(15), Shape::new(1280, 8, 8));
        // After mixed_7c: 2048 x 8 x 8.
        assert_eq!(m.unit_output_shape(17), Shape::new(2048, 8, 8));
    }

    #[test]
    fn classifier_output() {
        assert_eq!(inception_v3().output_shape(), Shape::new(1000, 1, 1));
    }

    #[test]
    fn uses_nonsquare_kernels() {
        // The reason the paper switched from Darknet to LibTorch.
        let m = inception_v3();
        let has_1x7 =
            m.units().iter().any(|u| match u {
                Unit::Block(b) => b.paths.iter().flatten().any(
                    |l| matches!(l.kind, crate::LayerKind::Conv(c) if c.kernel.0 != c.kernel.1),
                ),
                _ => false,
            });
        assert!(has_1x7);
    }
}
