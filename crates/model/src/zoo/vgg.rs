use crate::{ConvSpec, Layer, Model, PoolSpec, Shape, Unit};

/// VGG16 (Simonyan & Zisserman, 2014) with a 3x224x224 input: 13
/// convolution, 5 pooling, and 3 fully-connected layers — the paper's
/// primary chain-structured benchmark (Table I lists "13 conv + 5
/// pool").
///
/// Planners typically operate on [`Model::features`] (conv/pool only),
/// matching the paper's layer counts.
pub fn vgg16() -> Model {
    let mut units: Vec<Unit> = Vec::new();
    let mut in_ch = 3;
    // (blocks of convs, output channels) per VGG16 configuration D.
    let stages: [(usize, usize); 5] = [(2, 64), (2, 128), (3, 256), (3, 512), (3, 512)];
    for (s, (convs, out_ch)) in stages.iter().enumerate() {
        for c in 0..*convs {
            units.push(
                Layer::conv(
                    format!("conv{}_{}", s + 1, c + 1),
                    ConvSpec::square(in_ch, *out_ch, 3, 1, 1),
                )
                .into(),
            );
            in_ch = *out_ch;
        }
        units.push(Layer::pool(format!("pool{}", s + 1), PoolSpec::max(2, 2)).into());
    }
    units.push(Layer::fc("fc6", 512 * 7 * 7, 4096).into());
    units.push(Layer::fc("fc7", 4096, 4096).into());
    units.push(Layer::fc("fc8", 4096, 1000).into());
    Model::new("vgg16", Shape::new(3, 224, 224), units)
        .expect("vgg16 definition is internally consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_1000_classes() {
        assert_eq!(vgg16().output_shape(), Shape::new(1000, 1, 1));
    }

    #[test]
    fn features_end_at_7x7x512() {
        assert_eq!(vgg16().features().output_shape(), Shape::new(512, 7, 7));
    }

    #[test]
    fn parameters_are_about_138m() {
        let p = vgg16().parameters();
        assert!((130_000_000..145_000_000).contains(&p), "got {p}");
    }
}
