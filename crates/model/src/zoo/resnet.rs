use crate::{Block, ConvSpec, Layer, Model, PoolKind, PoolSpec, Shape, Unit};

/// ResNet34 (He et al., 2016) with a 3x224x224 input: a 7x7 stem, 16
/// basic residual blocks in four groups (3/4/6/3), global average
/// pooling, and a 1000-way classifier — the paper's chain-of-blocks
/// graph CNN (Fig. 5, Fig. 12).
///
/// Each residual block is one planning [`Unit`]; its input-row
/// requirement is the union hull of the main path (two 3x3 convs) and
/// the shortcut (Sec. IV-B).
pub fn resnet34() -> Model {
    let mut units: Vec<Unit> = Vec::new();
    units.push(Layer::conv("conv1", ConvSpec::square(3, 64, 7, 2, 3)).into());
    units.push(
        Layer::pool(
            "maxpool",
            PoolSpec {
                kind: PoolKind::Max,
                kernel: (3, 3),
                stride: (2, 2),
                padding: (1, 1),
            },
        )
        .into(),
    );

    // (blocks, channels) per group; the first block of groups 2-4
    // downsamples with stride 2 and a 1x1 projection shortcut.
    let groups: [(usize, usize); 4] = [(3, 64), (4, 128), (6, 256), (3, 512)];
    let mut in_ch = 64;
    for (g, (blocks, ch)) in groups.iter().enumerate() {
        for b in 0..*blocks {
            let downsample = g > 0 && b == 0;
            let stride = if downsample { 2 } else { 1 };
            let main = vec![
                Layer::conv(
                    format!("res{}_{}a", g + 2, b + 1),
                    ConvSpec::square(in_ch, *ch, 3, stride, 1),
                ),
                Layer::conv(
                    format!("res{}_{}b", g + 2, b + 1),
                    ConvSpec::square(*ch, *ch, 3, 1, 1),
                ),
            ];
            let shortcut = if downsample || in_ch != *ch {
                vec![Layer::conv(
                    format!("res{}_{}proj", g + 2, b + 1),
                    ConvSpec::square(in_ch, *ch, 1, stride, 0),
                )]
            } else {
                vec![]
            };
            units.push(Block::residual(format!("res{}_{}", g + 2, b + 1), main, shortcut).into());
            in_ch = *ch;
        }
    }

    units.push(Layer::pool("avgpool", PoolSpec::avg(7, 1)).into());
    units.push(Layer::fc("fc", 512, 1000).into());
    Model::new("resnet34", Shape::new(3, 224, 224), units)
        .expect("resnet34 definition is internally consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rows;

    #[test]
    fn stage_resolutions() {
        let m = resnet34();
        // conv1: 112, maxpool: 56, after group2: 56, g3: 28, g4: 14, g5: 7.
        assert_eq!(m.unit_output_shape(0).height, 112);
        assert_eq!(m.unit_output_shape(1).height, 56);
        assert_eq!(m.unit_output_shape(4), Shape::new(64, 56, 56)); // end of group 2
        assert_eq!(m.unit_output_shape(8), Shape::new(128, 28, 28)); // end of group 3
        assert_eq!(m.unit_output_shape(14), Shape::new(256, 14, 14)); // end of group 4
        assert_eq!(m.unit_output_shape(17), Shape::new(512, 7, 7)); // end of group 5
    }

    #[test]
    fn parameters_are_about_21m() {
        let p = resnet34().parameters();
        assert!((20_000_000..23_000_000).contains(&p), "got {p}");
    }

    #[test]
    fn residual_block_halo_is_two_rows() {
        let m = resnet34();
        // Block index 2 is the first identity residual at 56x56.
        let rows = m
            .unit(2)
            .input_rows(Rows::new(10, 20), m.unit_input_shape(2));
        assert_eq!(rows, Rows::new(8, 22));
    }
}
