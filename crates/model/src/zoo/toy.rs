use crate::{ConvSpec, Layer, Model, PoolSpec, Shape, Unit};

/// A toy chain of `conv_layers` 3x3 convolutions on a 3x64x64 input,
/// used for the PICO-vs-BFS optimization-cost study (Table II): the BFS
/// optimal planner is only tractable on models of this size.
///
/// Channel widths ramp 3 -> 16 -> 32 -> 32 -> ... so layer costs vary
/// (a heterogeneous layer mix, like real CNNs).
///
/// # Panics
///
/// Panics if `conv_layers == 0`.
pub fn toy(conv_layers: usize) -> Model {
    assert!(conv_layers > 0, "toy model needs at least one layer");
    let mut units: Vec<Unit> = Vec::new();
    let mut in_ch = 3;
    for i in 0..conv_layers {
        let out_ch = match i {
            0 => 16,
            _ => 32,
        };
        units.push(
            Layer::conv(
                format!("conv{}", i + 1),
                ConvSpec::square(in_ch, out_ch, 3, 1, 1),
            )
            .into(),
        );
        in_ch = out_ch;
    }
    Model::new(format!("toy{conv_layers}"), Shape::new(3, 64, 64), units)
        .expect("toy definition is internally consistent")
}

/// The Fig. 13 toy model: 8 convolution and 2 pooling layers on a
/// 1x64x64 input ("input images from the standard 64x64 MINIST
/// dataset"), deployed on a 6-device heterogeneous cluster in the paper.
pub fn mnist_toy() -> Model {
    let mut units: Vec<Unit> = Vec::new();
    let chans = [16, 16, 32, 32, 32, 64, 64, 64];
    let mut in_ch = 1;
    for (i, out_ch) in chans.iter().enumerate() {
        units.push(
            Layer::conv(
                format!("conv{}", i + 1),
                ConvSpec::square(in_ch, *out_ch, 3, 1, 1),
            )
            .into(),
        );
        in_ch = *out_ch;
        // Pools after conv3 and conv6: 64 -> 32 -> 16.
        if i == 2 || i == 5 {
            units.push(Layer::pool(format!("pool{}", i / 3 + 1), PoolSpec::max(2, 2)).into());
        }
    }
    Model::new("mnist_toy", Shape::new(1, 64, 64), units)
        .expect("mnist_toy definition is internally consistent")
}

/// The Theorem 1 NP-hardness construction: `n` identical 1x1
/// convolutions (no halo, so parallelization has zero overlap) on a
/// 32x64x64 input. Used by tests that need perfectly divisible,
/// identical-cost layers.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn identical_1x1(n: usize) -> Model {
    assert!(n > 0, "identical_1x1 needs at least one layer");
    let units: Vec<Unit> = (0..n)
        .map(|i| Layer::conv(format!("pw{}", i + 1), ConvSpec::pointwise(32, 32)).into())
        .collect();
    Model::new(format!("identical1x1_{n}"), Shape::new(32, 64, 64), units)
        .expect("identical_1x1 definition is internally consistent")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_sizes() {
        for n in [1, 4, 8, 16] {
            let m = toy(n);
            assert_eq!(m.len(), n);
            assert_eq!(m.output_shape().height, 64);
        }
    }

    #[test]
    fn mnist_toy_resolution_drops_twice() {
        let m = mnist_toy();
        assert_eq!(m.output_shape(), Shape::new(64, 16, 16));
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn toy_zero_panics() {
        toy(0);
    }
}
