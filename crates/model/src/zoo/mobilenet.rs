use crate::{ConvSpec, Layer, Model, PoolSpec, Shape, Unit};

/// MobileNetV1 (Howard et al., 2017) with a 3x224x224 input: the
/// canonical depthwise-separable edge CNN. Not part of the paper's
/// evaluation, but the first model a downstream IoT user reaches for —
/// and the stress test for grouped-convolution support.
///
/// Structure: a 3x3/2 stem, 13 depthwise-separable blocks (each a 3x3
/// depthwise conv followed by a 1x1 pointwise conv), global average
/// pooling, and a 1000-way classifier: 27 conv + 1 pool + 1 fc.
pub fn mobilenet_v1() -> Model {
    let mut units: Vec<Unit> = Vec::new();
    units.push(Layer::conv("conv1", ConvSpec::square(3, 32, 3, 2, 1)).into());

    // (stride, output channels) of each separable block.
    let blocks: [(usize, usize); 13] = [
        (1, 64),
        (2, 128),
        (1, 128),
        (2, 256),
        (1, 256),
        (2, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (1, 512),
        (2, 1024),
        (1, 1024),
    ];
    let mut in_ch = 32;
    for (i, (stride, out_ch)) in blocks.iter().enumerate() {
        units.push(
            Layer::conv(
                format!("dw{}", i + 1),
                ConvSpec::depthwise(in_ch, 3, *stride, 1),
            )
            .into(),
        );
        units.push(Layer::conv(format!("pw{}", i + 1), ConvSpec::pointwise(in_ch, *out_ch)).into());
        in_ch = *out_ch;
    }

    units.push(Layer::pool("avgpool", PoolSpec::avg(7, 1)).into());
    units.push(Layer::fc("fc", 1024, 1000).into());
    Model::new("mobilenet_v1", Shape::new(3, 224, 224), units)
        .expect("mobilenet_v1 definition is internally consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rows;

    #[test]
    fn output_and_unit_count() {
        let m = mobilenet_v1();
        assert_eq!(m.output_shape(), Shape::new(1000, 1, 1));
        // 1 stem + 13 * 2 separable convs + pool + fc.
        assert_eq!(m.len(), 1 + 26 + 2);
    }

    #[test]
    fn flops_are_about_half_a_gmac() {
        // Published MobileNetV1 is ~0.57 GMACs.
        let flops = mobilenet_v1().total_flops();
        assert!((0.4e9..0.8e9).contains(&flops), "got {flops:e}");
    }

    #[test]
    fn parameters_are_about_4m() {
        let p = mobilenet_v1().parameters();
        assert!((3_500_000..4_800_000).contains(&p), "got {p}");
    }

    #[test]
    fn depthwise_flops_are_cheap() {
        // dw1 (64 ch would be dense 3x3: k^2*c^2*hw); depthwise is k^2*c*hw.
        let m = mobilenet_v1();
        // Unit 1 is dw1 (32 channels at 112x112).
        let out = m.unit_output_shape(1);
        let dw = m
            .unit(1)
            .flops(Rows::full(out.height), m.unit_input_shape(1), out);
        assert_eq!(dw, (9 * 32 * 112 * 112) as f64);
    }

    #[test]
    fn depthwise_receptive_field_matches_dense() {
        // Grouping does not change spatial receptive fields.
        let m = mobilenet_v1();
        let rows = m
            .unit(1)
            .input_rows(Rows::new(10, 20), m.unit_input_shape(1));
        assert_eq!(rows, Rows::new(9, 21));
    }
}
