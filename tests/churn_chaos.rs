//! Churn chaos battery: scripted *membership* churn — departures,
//! re-admissions, re-provisioning, flapping — pushed through the epoch
//! orchestration, across a matrix of weight seeds, churn schedules, and
//! bit-exact compute backends (the mirror of `tests/chaos.rs`, which
//! covers fail-stop outages only). Every task must complete bit-exact
//! against clean single-device inference (churn moves work, never
//! changes results), re-admission epoch schedules must be
//! deterministic run over run, and no task may be dropped.

use std::sync::Arc;

use pico::prelude::*;

fn setup(cache: &Arc<PlanCache>) -> Pico {
    Pico::new(zoo::mnist_toy(), Cluster::pi_cluster(4, 1.0)).with_plan_cache(cache.clone())
}

/// Three qualitatively different churn stories over a 6-task stream:
/// a leave→rejoin cycle, a mid-stream re-provisioning, and a device
/// flapping twice.
fn schedules() -> Vec<(&'static str, ClusterSchedule)> {
    vec![
        (
            "leave-rejoin",
            ClusterSchedule::new().leave(3, 2).rejoin(3, 4),
        ),
        ("recapacity", ClusterSchedule::new().recapacity(0, 3, 0.6)),
        (
            "flapping",
            ClusterSchedule::new()
                .leave(3, 1)
                .rejoin(3, 2)
                .leave(3, 3)
                .rejoin(3, 4),
        ),
    ]
}

#[test]
fn churn_matrix_is_bit_exact_across_seeds_and_schedules() {
    let n = 6;
    for seed in [11u64, 22, 33] {
        let model = zoo::mnist_toy();
        let inputs: Vec<Tensor> = (0..n)
            .map(|i| Tensor::random(model.input_shape(), seed ^ (i as u64)))
            .collect();
        let oracle = Engine::with_seed(&model, seed).with_backend(EngineBackend::Reference);
        let references: Vec<Tensor> = inputs.iter().map(|x| oracle.infer(x).unwrap()).collect();
        for backend in EngineBackend::BIT_EXACT {
            for (name, schedule) in schedules() {
                let cache = Arc::new(PlanCache::new(64));
                let pico = setup(&cache).with_backend(backend);
                let report = pico
                    .execute_churn(inputs.clone(), seed, &schedule)
                    .unwrap_or_else(|e| panic!("seed {seed} {name} {backend}: {e}"));
                assert_eq!(
                    report.outputs.len(),
                    n,
                    "seed {seed} {name} {backend}: tasks dropped"
                );
                for (i, reference) in references.iter().enumerate() {
                    assert_eq!(
                        &report.outputs[i], reference,
                        "seed {seed} {name} {backend}: task {i} diverged from clean inference"
                    );
                }
                // Every epoch boundary in the script became an epoch,
                // and the full task range is covered exactly once.
                let covered: usize = report.epochs.iter().map(|e| e.tasks).sum();
                assert_eq!(covered, n, "seed {seed} {name} {backend}: epoch gap");
                assert!(
                    report.epochs.len() > 1,
                    "seed {seed} {name} {backend}: churn produced no boundary"
                );
            }
        }
    }
}

#[test]
fn readmission_schedules_are_deterministic() {
    // Same schedule, same seed: identical epoch records (membership,
    // admissions, switches) and identical outputs, run after run.
    let inputs: Vec<Tensor> = (0..6)
        .map(|i| Tensor::random(zoo::mnist_toy().input_shape(), 40 + i))
        .collect();
    for (name, schedule) in schedules() {
        let run = || {
            let cache = Arc::new(PlanCache::new(64));
            setup(&cache)
                .execute_churn(inputs.clone(), 17, &schedule)
                .unwrap()
        };
        let (a, b) = (run(), run());
        assert_eq!(a.outputs, b.outputs, "{name}: outputs diverged");
        let key = |r: &ChurnReport| -> Vec<String> {
            r.epochs
                .iter()
                .map(|e| {
                    format!(
                        "{}+{} {:?} {:?} {}",
                        e.start_task, e.tasks, e.devices, e.admitted, e.switch_committed
                    )
                })
                .collect()
        };
        assert_eq!(key(&a), key(&b), "{name}: epoch records diverged");
        assert_eq!(
            a.cache_invalidations, b.cache_invalidations,
            "{name}: invalidation accounting diverged"
        );
    }
}

#[test]
fn recapacity_invalidates_the_stale_membership() {
    // Re-provisioning device 0 changes the cluster signature, so the
    // frontier cached for the original membership must be dropped —
    // exactly one entry, exactly once.
    let cache = Arc::new(PlanCache::new(64));
    let pico = setup(&cache);
    let inputs: Vec<Tensor> = (0..6)
        .map(|i| Tensor::random(pico.model().input_shape(), 50 + i))
        .collect();
    let schedule = ClusterSchedule::new().recapacity(0, 3, 0.6);
    let report = pico.execute_churn(inputs, 9, &schedule).unwrap();
    assert_eq!(report.cache_invalidations, 1);
    let stats = cache.stats();
    assert_eq!(stats.invalidations, 1, "{stats:?}");
    assert_eq!(stats.misses, 2, "{stats:?}"); // one build per membership
    assert_eq!(stats.entries, 1, "{stats:?}"); // the stale one is gone
    assert_eq!(report.epochs[1].resized, vec![0]);
}

#[test]
fn rejoined_device_is_a_fresh_worker() {
    // Regression (gather-path retry state): device 3 dies at task 2 of
    // the first epoch; after it rejoins, the new epoch must treat it as
    // a fresh worker — no stale failure entry or per-task backoff may
    // leak across the epoch boundary and re-kill it.
    let cache = Arc::new(PlanCache::new(64));
    let pico = setup(&cache);
    let n = 8usize;
    let inputs: Vec<Tensor> = (0..n)
        .map(|i| Tensor::random(pico.model().input_shape(), 70 + i as u64))
        .collect();
    let schedule = ClusterSchedule::new().leave(3, 2).rejoin(3, 4);
    let report = pico.execute_churn(inputs.clone(), 23, &schedule).unwrap();
    assert_eq!(report.outputs.len(), n);
    assert_eq!(report.epochs.len(), 2);
    // The rejoin epoch serves the full 4-device membership again...
    assert_eq!(report.epochs[1].devices, vec![0, 1, 2, 3]);
    assert_eq!(report.epochs[1].admitted, vec![3]);
    // ...and device 3 is never re-declared dead: the old epoch's
    // failure entry (device 3 from relative task 2) must not shadow
    // tasks 2+ of the new epoch.
    assert_eq!(
        report.epochs[1].failures, 0,
        "stale failure state leaked into the rejoin epoch"
    );
    // The structural guarantee behind it: the rejoin epoch's failure
    // schedule is empty, because leaves are rebased per epoch.
    let epochs = schedule.epochs(pico.cluster()).unwrap();
    assert_eq!(epochs[0].leaves, vec![(3, 2)]);
    assert!(epochs[1].leaves.is_empty());
    // And the outputs stayed bit-exact throughout.
    let oracle = Engine::with_seed(pico.model(), 23).with_backend(EngineBackend::Reference);
    for (i, input) in inputs.iter().enumerate() {
        assert_eq!(report.outputs[i], oracle.infer(input).unwrap(), "task {i}");
    }
}
