//! Differential battery for the interleaved operator-partitioning
//! family (ILV, after arXiv 2409.07693): its plans must agree
//! bit-exactly with the fused and layer-wise families on the zoo, its
//! analytic cost must agree with the queueing simulator, and the plan
//! frontier that now sweeps it must stay deep-audit clean over every
//! entry's sustainable band.

use pico::prelude::*;
use pico::sim::WorkloadBand;

fn families() -> Vec<Box<dyn Planner>> {
    vec![
        Box::new(Interleaved::new()),
        Box::new(LayerWise::new()),
        Box::new(EarlyFused::new()),
        Box::new(OptimalFused::new()),
    ]
}

#[test]
fn interleaved_agrees_bit_exactly_with_fused_and_layer_wise() {
    let cluster = Cluster::pi_cluster(4, 1.0);
    let params = CostParams::wifi_50mbps();
    for model in [zoo::mnist_toy(), zoo::toy(6)] {
        let inputs: Vec<Tensor> = (0..3)
            .map(|i| Tensor::random(model.input_shape(), 300 + i))
            .collect();
        let oracle = Engine::with_seed(&model, 31).with_backend(EngineBackend::Reference);
        let references: Vec<Tensor> = inputs.iter().map(|x| oracle.infer(x).unwrap()).collect();
        for backend in EngineBackend::BIT_EXACT {
            let engine = Engine::with_seed(&model, 31).with_backend(backend);
            let mut per_family: Vec<(String, Vec<Tensor>)> = Vec::new();
            for planner in families() {
                let plan = planner
                    .plan(&PlanRequest::new(&model, &cluster, &params))
                    .unwrap();
                plan.validate(&model, &cluster).unwrap();
                let report = PipelineRuntime::new(&model, &plan, &engine)
                    .run(inputs.clone())
                    .unwrap();
                for (i, r) in references.iter().enumerate() {
                    assert_eq!(
                        &report.outputs[i],
                        r,
                        "{} task {i} on {} with {backend} diverged from the oracle",
                        planner.name(),
                        model.name()
                    );
                }
                per_family.push((planner.name().to_string(), report.outputs));
            }
            // ...and therefore from each other: the interleaved family
            // is differentially identical to fused and layer-wise.
            let (ilv_name, ilv_outputs) = &per_family[0];
            for (name, outputs) in &per_family[1..] {
                assert_eq!(
                    ilv_outputs,
                    outputs,
                    "{ilv_name} vs {name} on {} with {backend}",
                    model.name()
                );
            }
        }
    }
}

#[test]
fn interleaved_alternates_partitioning_axes() {
    // The family's signature: per-unit stages that alternate the split
    // axis — row strips on even units, column tiles on odd units.
    let model = zoo::mnist_toy();
    let cluster = Cluster::pi_cluster(4, 1.0);
    let params = CostParams::wifi_50mbps();
    let plan = Interleaved::new()
        .plan(&PlanRequest::new(&model, &cluster, &params))
        .unwrap();
    plan.validate(&model, &cluster).unwrap();
    assert_eq!(plan.scheme, Scheme::Interleaved);
    assert_eq!(plan.stages.len(), model.len(), "one stage per unit");
    assert!(
        !plan.stages[0].is_grid(),
        "even units are row strips, not tiles"
    );
    assert!(
        plan.stages.iter().any(|s| s.is_grid()),
        "no column-tiled stage: the axes never alternated"
    );
}

#[test]
fn interleaved_analytic_cost_agrees_with_the_simulator() {
    // Plan-level agreement: the cost model's period for an ILV plan
    // must match the queueing simulator's steady-state throughput, the
    // same contract the other families are held to.
    let model = zoo::vgg16().features();
    let cluster = Cluster::pi_cluster(8, 1.0);
    let params = CostParams::wifi_50mbps();
    let plan = Interleaved::new()
        .plan(&PlanRequest::new(&model, &cluster, &params))
        .unwrap();
    let metrics = params.cost_model(&model).evaluate(&plan, &cluster);
    let report = Simulation::new(&model, &cluster, &params).run(&plan, &Arrivals::closed_loop(300));
    let expected = 1.0 / metrics.period;
    assert!(
        (report.throughput - expected).abs() / expected < 0.05,
        "ILV: sim {} vs analytic {expected}",
        report.throughput
    );
}

#[test]
fn frontier_entries_audit_clean_over_the_sustainable_band() {
    // The frontier sweep now includes ILV; every Pareto entry — from
    // whichever family survived — must pass the deep audit over the
    // exact workload band it advertises as sustainable.
    let model = zoo::mnist_toy();
    let cluster = Cluster::pi_cluster(4, 1.0);
    let params = CostParams::wifi_50mbps();
    let frontier = FleetFrontier::build(&model, &cluster, &params, FleetConfig::default()).unwrap();
    assert!(!frontier.entries().is_empty());
    for entry in frontier.entries() {
        assert!(entry.lambda_star > 0.0);
        assert!(
            entry.band.hi < entry.lambda_star,
            "{}: band reaches the stability limit",
            entry.plan.scheme
        );
        let report = Auditor::new(&model, &cluster)
            .with_params(params)
            .with_config(AuditConfig::default().with_workload_band(entry.band))
            .audit_deep(&entry.plan);
        assert!(
            report.is_executable(),
            "{} frontier entry not audit clean over {:?}: {report}",
            entry.plan.scheme,
            entry.band
        );
    }
    // And the ILV family itself clears the same bar over its own band.
    let plan = Interleaved::new()
        .plan(&PlanRequest::new(&model, &cluster, &params))
        .unwrap();
    let lambda_star = 1.0 / params.cost_model(&model).evaluate(&plan, &cluster).period;
    let report = Auditor::new(&model, &cluster)
        .with_params(params)
        .with_config(
            AuditConfig::default().with_workload_band(WorkloadBand::new(0.0, 0.9 * lambda_star)),
        )
        .audit_deep(&plan);
    assert!(report.is_executable(), "ILV over its own band: {report}");
}
