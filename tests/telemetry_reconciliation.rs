//! Cross-crate telemetry law: `RunReport::stage_stats` is a *derived
//! view* over the recorder's `stage_busy` spans. The runtime hands the
//! exact same timestamps to both, so for any model, cluster, and task
//! count the span-derived per-stage busy time must equal the report's
//! to the last bit — not approximately.

use pico::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn stage_stats_reconcile_exactly_with_recorded_spans(
        model_sel in 0usize..4,
        devices in 1usize..5,
        tasks in 1usize..5,
        seed in 0u64..1000,
    ) {
        let model = if model_sel == 0 {
            zoo::mnist_toy()
        } else {
            zoo::toy(model_sel + 2)
        };
        let rec = Recorder::in_memory();
        let pico = Pico::new(model, Cluster::pi_cluster(devices, 1.0))
            .with_recorder(rec.clone());
        let plan = pico.plan().expect("toy models always plan");
        let inputs: Vec<Tensor> = (0..tasks)
            .map(|i| Tensor::random(pico.model().input_shape(), seed ^ i as u64))
            .collect();
        let report = pico.execute(&plan, inputs, seed).expect("pipeline runs");

        let summary = TraceSummary::from_events(&rec.snapshot());

        // Every stage that did work is present in the trace, and its
        // span-summed busy time is bit-identical to the report's.
        let by_span = summary.stage_busy();
        prop_assert_eq!(by_span.len(), report.stage_stats.len());
        for stat in &report.stage_stats {
            let busy = by_span
                .iter()
                .find(|(s, _)| *s as usize == stat.stage)
                .map(|(_, b)| *b);
            prop_assert_eq!(
                Some(stat.busy_secs),
                busy,
                "stage {} busy diverged from its spans",
                stat.stage
            );
        }

        // Derived aggregates agree exactly too: same inputs, same
        // arithmetic, no tolerance needed.
        prop_assert_eq!(summary.measured_period(), report.measured_period());
        prop_assert_eq!(summary.tasks_completed, tasks as f64);
        let total_tasks: usize = report.stage_stats.iter().map(|s| s.tasks).sum();
        prop_assert_eq!(total_tasks, tasks * plan.stage_count());
    }
}
