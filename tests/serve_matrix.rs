//! Deterministic serving matrix: every built-in replay script, across
//! several weight seeds, pushed through the *threaded* runtime by the
//! virtual-time replayer. The serving contract under test:
//!
//! 1. **Bit-exactness** — every served output equals clean
//!    single-device inference on the same engine, batch composition
//!    and warm swaps notwithstanding.
//! 2. **Zero drops** — every arrival is either completed or rejected
//!    with a typed error, even when the trace crosses a mid-trace
//!    PICO → OFL warm swap (the audit-gated drain).
//! 3. **Typed backpressure exactly at the bounds** — a rejection
//!    happens only when the tenant's queue is at capacity (or budget),
//!    never below it.
//! 4. **Determinism** — two replays of the same script agree event for
//!    event, batch for batch, byte for byte.

use pico::prelude::*;
use pico::serve::{build_script, ReplayScript, ScriptSpec};

fn setup() -> (Model, Cluster, CostParams) {
    (
        zoo::mnist_toy(),
        Cluster::pi_cluster(4, 1.0),
        CostParams::wifi_50mbps(),
    )
}

#[test]
fn every_script_and_seed_serves_bit_exactly_with_zero_drops() {
    let (m, c, p) = setup();
    for script in ReplayScript::ALL {
        for seed in [1u64, 7, 23] {
            let spec = ScriptSpec {
                tasks: 32,
                tenants: 2,
                seed,
                swap_at: Some(16),
            };
            let rp = build_script(&m, &c, &p, script, &spec).unwrap();
            let engine = Engine::with_seed(&m, seed);
            let outcome = Replayer::new(&m, &c, &p, &engine, rp.config.clone())
                .run(&rp.initial, &rp.events)
                .unwrap();
            let label = format!("{}/seed{seed}", script.name());

            // Zero drops across the warm swap: the arrival count is
            // fully accounted for, and every admitted task completed.
            assert_eq!(outcome.swaps, 1, "{label}: the mid-trace swap must land");
            assert_eq!(outcome.epochs, 2, "{label}");
            assert!(outcome.swap_rejections.is_empty(), "{label}");
            let admitted: u64 = outcome.per_tenant.iter().map(|t| t.admitted).sum();
            let completed: u64 = outcome.per_tenant.iter().map(|t| t.completed).sum();
            assert_eq!(completed, admitted, "{label}: admitted task dropped");
            assert_eq!(
                outcome.completed.len() + outcome.rejections.len(),
                spec.tasks,
                "{label}: arrivals unaccounted for"
            );

            // Bit-exactness: each completed task's output matches clean
            // single-device inference on the task's own input.
            let inputs: Vec<Tensor> = (0..spec.tasks)
                .map(|k| Tensor::random(m.input_shape(), seed * 1000 + k as u64))
                .collect();
            for done in &outcome.completed {
                let expect = engine.infer(&inputs[done.seq]).unwrap();
                assert_eq!(
                    done.output.data(),
                    expect.data(),
                    "{label}: task {} diverged",
                    done.seq
                );
            }

            // Every rejection is typed and cites the configured bound.
            for r in &outcome.rejections {
                match &r.error {
                    pico::serve::ServeError::QueueFull { tenant, capacity } => {
                        assert_eq!(*tenant, r.tenant, "{label}");
                        assert_eq!(
                            *capacity, rp.config.tenants[r.tenant].queue_capacity,
                            "{label}"
                        );
                    }
                    pico::serve::ServeError::TenantOverBudget { tenant, budget } => {
                        assert_eq!(*tenant, r.tenant, "{label}");
                        assert_eq!(
                            *budget, rp.config.tenants[r.tenant].in_flight_budget,
                            "{label}"
                        );
                    }
                    other => panic!("{label}: untyped rejection {other:?}"),
                }
            }
        }
    }
}

#[test]
fn replays_are_deterministic() {
    let (m, c, p) = setup();
    let spec = ScriptSpec {
        tasks: 48,
        ..ScriptSpec::default()
    }
    .with_midtrace_swap();
    let rp = build_script(&m, &c, &p, ReplayScript::Bursty, &spec).unwrap();
    let engine = Engine::with_seed(&m, 11);
    let run = || {
        Replayer::new(&m, &c, &p, &engine, rp.config.clone())
            .run(&rp.initial, &rp.events)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.batch_sizes, b.batch_sizes);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.completed.len(), b.completed.len());
    for (x, y) in a.completed.iter().zip(&b.completed) {
        assert_eq!(x.seq, y.seq);
        assert_eq!(x.tenant, y.tenant);
        assert_eq!(x.finished_at, y.finished_at);
        assert_eq!(x.output.data(), y.output.data());
    }
    for (x, y) in a.rejections.iter().zip(&b.rejections) {
        assert_eq!(x.seq, y.seq);
        assert_eq!(x.error, y.error);
    }
}

#[test]
fn bursty_trace_adapts_batch_size_and_rejects_at_the_bound() {
    let (m, c, p) = setup();
    let spec = ScriptSpec {
        tasks: 96,
        tenants: 2,
        seed: 7,
        swap_at: None,
    };
    let rp = build_script(&m, &c, &p, ReplayScript::Bursty, &spec).unwrap();
    let engine = Engine::with_seed(&m, 7);
    let outcome = Replayer::new(&m, &c, &p, &engine, rp.config.clone())
        .run(&rp.initial, &rp.events)
        .unwrap();
    // Quiet stretches serve singletons; bursts must visibly grow the
    // adaptive micro-batch.
    assert_eq!(outcome.min_batch(), 1, "quiet phase should serve singly");
    assert!(
        outcome.max_batch() >= 3,
        "bursts should grow batches, got max {}",
        outcome.max_batch()
    );
    // The steady script at the same arrival volume never needs to
    // reject; the bursty one overruns the 8-deep queues by design.
    let steady = build_script(&m, &c, &p, ReplayScript::Steady, &spec).unwrap();
    let steady_out = Replayer::new(&m, &c, &p, &engine, steady.config.clone())
        .run(&steady.initial, &steady.events)
        .unwrap();
    assert!(
        steady_out.rejections.is_empty(),
        "steady trace must admit everything"
    );
}
