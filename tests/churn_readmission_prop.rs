//! Property: churn re-admission is total. For an arbitrary
//! valid-by-construction churn-event sequence over a small cluster,
//! every re-admission re-plan behind [`Pico::execute_churn`] is
//! deep-audit clean (the orchestration gates on it, so `Ok` proves it)
//! or the call returns a typed [`ChurnRunError`] — never a panic — and
//! the plan-cache hit/miss/invalidation accounting stays exact against
//! a reference simulation of the epoch walk. Corrupted sequences must
//! be rejected as [`ChurnRunError::Schedule`] and flagged PA5xx by the
//! churn audit pass.

use std::collections::BTreeSet;
use std::sync::Arc;

use pico::prelude::*;
use proptest::prelude::*;

/// Picks the `pick`-th device (mod pool size) whose liveness equals
/// `want`. Callers guarantee the pool is non-empty.
fn nth_with(active: &[bool], pick: usize, want: bool) -> usize {
    let pool: Vec<usize> = active
        .iter()
        .enumerate()
        .filter(|(_, &a)| a == want)
        .map(|(i, _)| i)
        .collect();
    pool[pick % pool.len()]
}

/// Folds raw op tuples into a legal schedule: leaves keep at least one
/// device live, rejoins target currently-absent devices, joins mint
/// fresh ids, recapacities target live devices, and every event gets a
/// distinct task index.
fn build_schedule(ops: &[(usize, usize, usize)], base: usize) -> ClusterSchedule {
    let mut active = vec![true; base];
    let mut live = base;
    let mut next_join = base;
    let mut at = 0usize;
    let mut schedule = ClusterSchedule::new();
    for &(pick, kind, gap) in ops {
        at += gap;
        match kind {
            0 if live > 1 => {
                let dev = nth_with(&active, pick, true);
                schedule = schedule.leave(dev, at);
                active[dev] = false;
                live -= 1;
            }
            1 if live < active.len() => {
                let dev = nth_with(&active, pick, false);
                schedule = schedule.rejoin(dev, at);
                active[dev] = true;
                live += 1;
            }
            2 => {
                schedule = schedule.join(next_join, at, 0.6 + 0.1 * (pick % 5) as f64);
                active.push(true);
                next_join += 1;
                live += 1;
            }
            3 => {
                let dev = nth_with(&active, pick, true);
                schedule = schedule.recapacity(dev, at, 0.5 + 0.1 * (pick % 8) as f64);
            }
            _ => {} // leave/rejoin op that would be illegal right now: skip
        }
    }
    schedule
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn readmission_replans_audit_clean_or_fail_typed(
        ops in proptest::collection::vec((0usize..8, 0usize..4, 1usize..3), 1..6),
        devices in 3usize..5,
        n in 2usize..5,
    ) {
        let schedule = build_schedule(&ops, devices);
        let cache = Arc::new(PlanCache::new(64));
        let pico = Pico::new(zoo::mnist_toy(), Cluster::pi_cluster(devices, 1.0))
            .with_plan_cache(cache.clone());

        // Valid by construction: the schedule-level audit pass agrees.
        let churn_audit = Auditor::new(pico.model(), pico.cluster()).audit_churn(&schedule);
        prop_assert!(
            churn_audit.is_executable(),
            "legal schedule flagged: {churn_audit}"
        );

        let inputs: Vec<Tensor> = (0..n)
            .map(|i| Tensor::random(pico.model().input_shape(), 1000 + i as u64))
            .collect();
        match pico.execute_churn(inputs, 5, &schedule) {
            Ok(report) => {
                prop_assert_eq!(report.outputs.len(), n, "tasks dropped");

                // Reference simulation of the epoch walk: one cache
                // access per epoch, one stale-signature sweep per
                // re-plan boundary whose membership changed.
                let epochs = schedule.epochs(pico.cluster()).unwrap();
                let mut cached: BTreeSet<u64> = BTreeSet::new();
                let (mut hits, mut misses, mut invalidations) = (0u64, 0u64, 0u64);
                let mut prev_sig: Option<u64> = None;
                for epoch in &epochs {
                    let sig = ClusterSignature::of(&epoch.cluster).as_u64();
                    if cached.contains(&sig) {
                        hits += 1;
                    } else {
                        misses += 1;
                        cached.insert(sig);
                    }
                    if let Some(p) = prev_sig {
                        if epoch.needs_replan() && p != sig && cached.remove(&p) {
                            invalidations += 1;
                        }
                    }
                    prev_sig = Some(sig);
                }
                let stats = cache.stats();
                prop_assert_eq!(stats.hits, hits, "hit accounting drifted: {:?}", stats);
                prop_assert_eq!(stats.misses, misses, "miss accounting drifted: {:?}", stats);
                prop_assert_eq!(
                    stats.invalidations, invalidations,
                    "invalidation accounting drifted: {:?}", stats
                );
                prop_assert_eq!(report.cache_invalidations, invalidations);
                prop_assert_eq!(stats.evictions, 0, "cache too small for the walk");
                prop_assert_eq!(stats.hits + stats.misses, epochs.len() as u64);
                prop_assert_eq!(stats.entries as u64, misses - invalidations);
            }
            // A typed planning/audit/runtime refusal is a legitimate
            // outcome; an illegal-schedule error is not, because the
            // sequence was legal by construction.
            Err(e) => prop_assert!(
                !matches!(e, ChurnRunError::Schedule(_)),
                "legal schedule rejected as illegal: {e}"
            ),
        }
    }

    #[test]
    fn corrupted_sequences_are_rejected_typed_and_flagged(
        ops in proptest::collection::vec((0usize..8, 0usize..4, 1usize..3), 0..5),
        devices in 3usize..5,
    ) {
        // Append an always-illegal event: device 99 never existed.
        let schedule = build_schedule(&ops, devices).leave(99, 40);
        let pico = Pico::new(zoo::mnist_toy(), Cluster::pi_cluster(devices, 1.0));

        let report = Auditor::new(pico.model(), pico.cluster()).audit_churn(&schedule);
        prop_assert!(report.has_code(Code::ChurnUnknownDevice), "{report}");
        prop_assert!(!report.is_executable());

        let inputs = vec![Tensor::random(pico.model().input_shape(), 2000)];
        let err = pico.execute_churn(inputs, 5, &schedule).unwrap_err();
        prop_assert!(
            matches!(err, ChurnRunError::Schedule(ChurnError::UnknownDevice { .. })),
            "expected a typed schedule error, got: {err}"
        );
    }
}
