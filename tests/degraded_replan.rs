//! Property: degraded re-planning never panics. For an arbitrary small
//! model, cluster, and non-empty failed-device subset, excluding the
//! failed devices either yields a plan that audits clean (zero
//! error-level diagnostics, no excluded device used) or a typed
//! [`PlanError`] — never a crash.

use pico::model::{ConvSpec, Layer, PoolSpec};
use pico::partition::PlanError;
use pico::prelude::*;
use proptest::prelude::*;

/// Random small conv/pool chains (kernels >= strides, shapes kept
/// valid) — same recipe as the partition property tests.
fn arb_model() -> impl Strategy<Value = Model> {
    let layer = prop_oneof![
        (1usize..=4, 1usize..=2, 0usize..=1).prop_map(|(k, s, p)| (k.max(s), s, p, true)),
        (2usize..=2, 2usize..=2).prop_map(|(k, s)| (k, s, 0usize, false)),
    ];
    proptest::collection::vec(layer, 1..6).prop_map(|specs| {
        let input = Shape::new(3, 32, 32);
        let mut units: Vec<pico::model::Unit> = Vec::new();
        let mut shape = input;
        for (i, (k, s, p, conv)) in specs.into_iter().enumerate() {
            let layer = if conv {
                Layer::conv(
                    format!("c{i}"),
                    ConvSpec::square(shape.channels, 6, k, s, p),
                )
            } else {
                Layer::pool(format!("p{i}"), PoolSpec::max(k, s))
            };
            if let Ok(next) = layer.output_shape(shape) {
                if next.height >= 2 && next.width >= 2 {
                    shape = next;
                    units.push(layer.into());
                }
            }
        }
        if units.is_empty() {
            units.push(Layer::conv("fallback", ConvSpec::square(3, 6, 3, 1, 1)).into());
        }
        Model::new("prop", input, units).expect("chain is consistent")
    })
}

fn planners() -> Vec<Box<dyn Planner>> {
    vec![Box::new(PicoPlanner::new()), Box::new(OptimalFused::new())]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn degraded_replanning_audits_clean_or_fails_typed(
        model in arb_model(),
        freqs in proptest::collection::vec(0.4f64..2.0, 2..6),
        picks in proptest::collection::vec(0usize..64, 1..6),
        mbps in 5.0f64..200.0,
    ) {
        let cluster = Cluster::new(
            freqs
                .iter()
                .enumerate()
                .map(|(i, f)| Device::from_frequency(i, *f))
                .collect(),
        );
        let n = cluster.devices().len();
        // A non-empty, deduplicated failed subset — possibly all of n.
        let failed: Vec<usize> = {
            let set: std::collections::BTreeSet<usize> =
                picks.iter().map(|p| p % n).collect();
            set.into_iter().collect()
        };
        let params = CostParams::new(mbps * 1e6);
        let request = PlanRequest::new(&model, &cluster, &params)
            .with_excluded_devices(&failed);
        if failed.len() == n {
            // Excluding every device is a typed error, not a panic.
            prop_assert!(
                matches!(&request, Err(PlanError::ClusterExhausted { .. })),
                "exhausting the cluster must be ClusterExhausted"
            );
        }
        prop_assume!(failed.len() < n);
        let request = request.expect("a survivor remains, exclusion is accepted");
        for planner in planners() {
            // A typed planning failure over the survivors is a
            // legitimate outcome; the property only forbids panics and
            // bad plans.
            let Ok(plan) = planner.plan(&request) else { continue };
            for device in plan.used_devices() {
                prop_assert!(
                    !failed.contains(&device),
                    "{}: degraded plan uses excluded device {device}",
                    planner.name()
                );
            }
            let report = Auditor::new(&model, &cluster)
                .with_params(params)
                .with_config(AuditConfig::default().with_excluded_devices(&failed))
                .audit(&plan);
            let errors: Vec<String> = report.errors().map(|d| d.to_string()).collect();
            prop_assert!(
                errors.is_empty(),
                "{}: degraded plan has error diagnostics: {errors:?}",
                planner.name()
            );
            prop_assert!(
                !report.has_code(Code::ExcludedDeviceUsed),
                "{}: PA203 fired on a freshly re-planned pipeline",
                planner.name()
            );
        }
    }
}
