//! Golden failover trace: a run with injected failures is exported as a
//! Chrome trace, re-parsed, and the recovery narrative — `device_failed`
//! then `task_retried` then `plan_degraded` — is asserted from the
//! parsed instants' timestamps, exactly as a human would read it in
//! `chrome://tracing`.

use pico::model::{ConvSpec, Layer};
use pico::partition::{Assignment, ExecutionMode, Stage};
use pico::prelude::*;
use pico::telemetry::trace::{chrome_trace, parse_chrome_trace};

#[test]
fn failover_trace_tells_the_recovery_story_in_order() {
    // Two equal conv stages on four devices: stage 0 = {d0, d1},
    // stage 1 = {d2, d3}, rows split in half.
    let m = Model::new(
        "failover",
        Shape::new(4, 12, 12),
        vec![
            Layer::conv("a", ConvSpec::square(4, 4, 3, 1, 1)).into(),
            Layer::conv("b", ConvSpec::square(4, 4, 3, 1, 1)).into(),
        ],
    )
    .unwrap();
    let c = Cluster::pi_cluster(4, 1.0);
    let p = CostParams::wifi_50mbps();
    let h = m.output_shape().height;
    let plan = Plan::new(
        Scheme::Pico,
        ExecutionMode::Pipelined,
        vec![
            Stage::new(
                Segment::new(0, 1),
                vec![
                    Assignment::new(0, Rows::new(0, h / 2)),
                    Assignment::new(1, Rows::new(h / 2, h)),
                ],
            ),
            Stage::new(
                Segment::new(1, 2),
                vec![
                    Assignment::new(2, Rows::new(0, h / 2)),
                    Assignment::new(3, Rows::new(h / 2, h)),
                ],
            ),
        ],
    );
    let engine = Engine::with_seed(&m, 17);
    let n: usize = 5;
    let inputs: Vec<Tensor> = (0..n)
        .map(|i| Tensor::random(m.input_shape(), i as u64))
        .collect();
    let references: Vec<Tensor> = inputs.iter().map(|x| engine.infer(x).unwrap()).collect();

    // d0 dies at task 1 (shard retried on d1), then d1 dies at task 2
    // (stage 0 has no survivor -> degraded re-plan on {d2, d3}).
    let rec = Recorder::in_memory();
    let report = PipelineRuntime::builder(&m, &plan, &engine)
        .recorder(rec.clone())
        .failure_schedule(FailureSchedule::new().fail(0, 1).fail(1, 2))
        .recovery(RecoveryPolicy::new(c.clone(), p))
        .build()
        .run(inputs)
        .unwrap();

    // The degraded run still completes everything bit-exactly.
    assert_eq!(report.outputs.len(), n);
    for (i, reference) in references.iter().enumerate() {
        assert_eq!(&report.outputs[i], reference, "task {i} diverged");
    }
    let dead: Vec<usize> = report.failures.iter().map(|f| f.device).collect();
    assert!(dead.contains(&0) && dead.contains(&1), "failures {dead:?}");
    let degraded = report.degraded_plan.as_ref().expect("re-plan installed");
    for device in degraded.used_devices() {
        assert!(device >= 2, "degraded plan still uses dead device {device}");
    }

    // Round-trip through the Chrome trace format.
    let json = chrome_trace(&rec.snapshot());
    let parsed = parse_chrome_trace(&json).expect("runtime writes valid traces");
    let first_ts = |name: &str| -> f64 {
        parsed
            .instant_events
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, ts)| *ts)
            .fold(f64::INFINITY, f64::min)
    };
    let failed = first_ts(names::DEVICE_FAILED);
    let retried = first_ts(names::TASK_RETRIED);
    let degraded_ts = first_ts(names::PLAN_DEGRADED);
    assert!(failed.is_finite(), "no device_failed instant in the trace");
    assert!(retried.is_finite(), "no task_retried instant in the trace");
    assert!(
        degraded_ts.is_finite(),
        "no plan_degraded instant in the trace"
    );
    assert!(
        failed < retried && retried < degraded_ts,
        "recovery story out of order: failed {failed} retried {retried} degraded {degraded_ts}"
    );
}
