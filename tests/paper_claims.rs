//! End-to-end assertions of the paper's headline claims on the
//! simulated testbed (shape reproduction, not absolute numbers).

use pico::prelude::*;

/// Paper abstract: "the average inference latency can be reduced by
/// 1.7 ~ 6.5x under different workloads".
#[test]
fn latency_reduction_band_under_heavy_workload() {
    let model = zoo::vgg16().features();
    let cluster = Cluster::pi_cluster(8, 1.0);
    let deployment = Pico::new(model.clone(), cluster.clone());

    let efl = deployment.plan_with(&EarlyFused::new()).unwrap();
    let pico_plan = deployment.plan().unwrap();
    let capacity = 1.0 / deployment.predict(&efl).period;

    for load in [1.2, 1.5] {
        let arrivals = Arrivals::poisson(load * capacity, 600.0, 5);
        let r_efl = deployment.simulate(&efl, &arrivals);
        let r_pico = deployment.simulate(&pico_plan, &arrivals);
        let ratio = r_efl.avg_latency / r_pico.avg_latency;
        assert!(
            ratio > 1.7,
            "load {load}: latency reduction {ratio:.2}x below the paper's band"
        );
    }
}

/// Paper abstract: "the throughput can be improved by 1.8 ~ 6.2x under
/// various network settings".
#[test]
fn throughput_improvement_band_across_bandwidths() {
    let model = zoo::vgg16().features();
    let cluster = Cluster::pi_cluster(8, 1.0);
    for mbps in [20.0, 50.0, 100.0] {
        let params = CostParams::new(mbps * 1e6);
        let deployment = Pico::new(model.clone(), cluster.clone()).with_params(params);
        let efl = deployment.plan_with(&EarlyFused::new()).unwrap();
        let pico_plan = deployment.plan().unwrap();
        let gain = deployment.predict(&efl).period / deployment.predict(&pico_plan).period;
        assert!(
            (1.5..10.0).contains(&gain),
            "{mbps} Mbps: throughput gain {gain:.2}x outside a plausible band"
        );
    }
}

/// Sec. IV-C: under light load the one-stage scheme has lower average
/// latency; under heavy load the pipeline wins — the crossover that
/// motivates APICO.
#[test]
fn light_heavy_crossover_exists() {
    let model = zoo::vgg16().features();
    let deployment = Pico::new(model, Cluster::pi_cluster(8, 1.0));
    let ofl = deployment.plan_with(&OptimalFused::new()).unwrap();
    let pico_plan = deployment.plan().unwrap();
    let ofl_capacity = 1.0 / deployment.predict(&ofl).period;

    let light = Arrivals::poisson(0.05 * ofl_capacity, 2000.0, 1);
    let heavy = Arrivals::poisson(1.30 * ofl_capacity, 2000.0, 2);

    let light_ofl = deployment.simulate(&ofl, &light).avg_latency;
    let light_pico = deployment.simulate(&pico_plan, &light).avg_latency;
    assert!(
        light_ofl < light_pico,
        "light: ofl {light_ofl} pico {light_pico}"
    );

    let heavy_ofl = deployment.simulate(&ofl, &heavy).avg_latency;
    let heavy_pico = deployment.simulate(&pico_plan, &heavy).avg_latency;
    assert!(
        heavy_pico < heavy_ofl,
        "heavy: pico {heavy_pico} ofl {heavy_ofl}"
    );
}

/// APICO tracks the better static scheme across a workload ramp.
#[test]
fn apico_tracks_best_static_scheme() {
    let model = zoo::vgg16().features();
    let deployment = Pico::new(model, Cluster::pi_cluster(8, 1.0));
    let ofl = deployment.plan_with(&OptimalFused::new()).unwrap();
    let pico_plan = deployment.plan().unwrap();
    let capacity = 1.0 / deployment.predict(&ofl).period;

    for load in [0.3, 1.3] {
        let arrivals = Arrivals::poisson(load * capacity, 3000.0, 9);
        let (adaptive, decisions) = deployment.run_adaptive(&arrivals, 60.0, 0.4).unwrap();
        let best_static = deployment
            .simulate(&ofl, &arrivals)
            .avg_latency
            .min(deployment.simulate(&pico_plan, &arrivals).avg_latency);
        assert!(
            adaptive.avg_latency <= best_static * 1.25,
            "load {load}: APICO {} vs best static {best_static}",
            adaptive.avg_latency
        );
        assert!(!decisions.is_empty());
    }
}

/// Theorem 1's construction: with identical 1x1 layers (zero halo) and a
/// free network, PICO's homogeneous DP approaches ideal linear scaling.
#[test]
fn np_hardness_construction_scales_linearly() {
    let model = zoo::identical_1x1(8);
    let params = CostParams::new(1e15); // effectively free network
    for devices in [2usize, 4, 8] {
        let cluster = Cluster::pi_cluster(devices, 1.0);
        let plan = PicoPlanner::new()
            .plan(&PlanRequest::new(&model, &cluster, &params))
            .unwrap();
        let metrics = params.cost_model(&model).evaluate(&plan, &cluster);
        let single = Cluster::pi_cluster(1, 1.0);
        let solo = PicoPlanner::new()
            .plan(&PlanRequest::new(&model, &single, &params))
            .unwrap();
        let solo_metrics = params.cost_model(&model).evaluate(&solo, &single);
        let speedup = solo_metrics.period / metrics.period;
        assert!(
            speedup > devices as f64 * 0.75,
            "{devices} devices: speedup {speedup:.2}"
        );
    }
}

/// The latency constraint (Eq. 1) is enforced end to end.
#[test]
fn latency_constraint_respected_through_facade() {
    let model = zoo::vgg16().features();
    let cluster = Cluster::pi_cluster(8, 1.0);
    let free = Pico::new(model.clone(), cluster.clone());
    let unconstrained = free.predict(&free.plan().unwrap());

    // A bound between the single-stage latency and the unconstrained
    // pipeline latency forces a shallower pipeline.
    let params = CostParams::wifi_50mbps();
    let single_stage = params
        .cost_model(&model)
        .even_stage_cost(model.full_segment(), &cluster, 8)
        .total();
    let t_lim = single_stage.max(unconstrained.latency * 0.6);
    let constrained =
        Pico::new(model, cluster).with_params(CostParams::wifi_50mbps().with_t_lim(t_lim));
    let plan = constrained.plan().unwrap();
    let metrics = constrained.predict(&plan);
    assert!(metrics.latency <= t_lim + 1e-9);
    assert!(metrics.period >= unconstrained.period - 1e-9);
}
