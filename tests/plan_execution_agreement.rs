//! Cross-crate integration: plans from every planner must survive
//! validation, simulation, and *real* threaded execution with
//! bit-identical outputs — the full plan → simulate → execute loop,
//! exercised under every bit-exact [`EngineBackend`] against the
//! naive-loop oracle. The lossy `Int8` backend rides the same loop
//! with its own contract: pipelined execution is *bit-exactly*
//! self-consistent with single-device int8 inference (static
//! activation scales), and tolerance-bounded against the f32 oracle.

use pico::prelude::*;

fn models_under_test() -> Vec<Model> {
    vec![zoo::mnist_toy(), zoo::toy(6)]
}

fn planners() -> Vec<Box<dyn Planner>> {
    vec![
        Box::new(LayerWise::new()),
        Box::new(EarlyFused::new()),
        Box::new(OptimalFused::new()),
        Box::new(PicoPlanner::new()),
        Box::new(BfsOptimal::new()),
        Box::new(GridFused::new()),
    ]
}

#[test]
fn every_planner_executes_bit_exactly_on_homogeneous_cluster() {
    let cluster = Cluster::pi_cluster(4, 1.0);
    let params = CostParams::wifi_50mbps();
    for model in models_under_test() {
        let input = Tensor::random(model.input_shape(), 9);
        // One oracle for every f32 backend: the naive reference loops.
        let reference = Engine::with_seed(&model, 123)
            .with_backend(EngineBackend::Reference)
            .infer(&input)
            .unwrap();
        for backend in EngineBackend::BIT_EXACT {
            let engine = Engine::with_seed(&model, 123).with_backend(backend);
            for planner in planners() {
                let plan = planner
                    .plan(&PlanRequest::new(&model, &cluster, &params))
                    .unwrap();
                plan.validate(&model, &cluster).unwrap();
                let runtime = PipelineRuntime::new(&model, &plan, &engine);
                let report = runtime.run(vec![input.clone()]).unwrap();
                assert_eq!(
                    report.outputs[0],
                    reference,
                    "{} diverged on {} with {backend} backend",
                    planner.name(),
                    model.name()
                );
            }
        }
    }
}

#[test]
fn every_planner_executes_bit_exactly_on_heterogeneous_cluster() {
    let cluster = Cluster::paper_heterogeneous_6();
    let params = CostParams::wifi_50mbps();
    let model = zoo::mnist_toy();
    let inputs: Vec<Tensor> = (0..3)
        .map(|i| Tensor::random(model.input_shape(), 50 + i))
        .collect();
    let oracle = Engine::with_seed(&model, 7).with_backend(EngineBackend::Reference);
    let references: Vec<Tensor> = inputs.iter().map(|x| oracle.infer(x).unwrap()).collect();
    for backend in EngineBackend::BIT_EXACT {
        let engine = Engine::with_seed(&model, 7).with_backend(backend);
        for planner in planners() {
            let plan = planner
                .plan(&PlanRequest::new(&model, &cluster, &params))
                .unwrap();
            plan.validate(&model, &cluster).unwrap();
            let report = PipelineRuntime::new(&model, &plan, &engine)
                .run(inputs.clone())
                .unwrap();
            for (i, r) in references.iter().enumerate() {
                assert_eq!(
                    &report.outputs[i],
                    r,
                    "{} task {i} with {backend} backend",
                    planner.name()
                );
            }
        }
    }
}

#[test]
fn simulated_throughput_matches_analytic_for_every_scheme() {
    // The simulator and the cost model must agree in steady state.
    let model = zoo::vgg16().features();
    let cluster = Cluster::pi_cluster(8, 1.0);
    let params = CostParams::wifi_50mbps();
    let cm = params.cost_model(&model);
    let sim = Simulation::new(&model, &cluster, &params);
    for planner in planners()
        .into_iter()
        .filter(|p| p.name() != "BFS")
        .collect::<Vec<_>>()
    {
        let plan = planner
            .plan(&PlanRequest::new(&model, &cluster, &params))
            .unwrap();
        let metrics = cm.evaluate(&plan, &cluster);
        let report = sim.run(&plan, &Arrivals::closed_loop(300));
        let expected = 1.0 / metrics.period;
        assert!(
            (report.throughput - expected).abs() / expected < 0.05,
            "{}: sim {} vs analytic {expected}",
            planner.name(),
            report.throughput
        );
    }
}

#[test]
fn grid_plan_executes_bit_exactly_through_runtime() {
    // The 2-D extension end to end: a grid-fused plan through the real
    // threaded pipeline (rectangular scatter, grid stitch) equals
    // single-device inference.
    let model = zoo::mnist_toy();
    let cluster = Cluster::pi_cluster(6, 1.0);
    let params = CostParams::wifi_50mbps();
    let plan = GridFused::new()
        .with_grid(2, 3)
        .plan(&PlanRequest::new(&model, &cluster, &params))
        .unwrap();
    plan.validate(&model, &cluster).unwrap();
    assert!(plan.stages[0].is_grid());
    let inputs: Vec<Tensor> = (0..3)
        .map(|i| Tensor::random(model.input_shape(), 200 + i))
        .collect();
    for backend in EngineBackend::ALL {
        let engine = Engine::with_seed(&model, 17).with_backend(backend);
        let report = PipelineRuntime::new(&model, &plan, &engine)
            .run(inputs.clone())
            .unwrap();
        for (i, input) in inputs.iter().enumerate() {
            assert_eq!(
                report.outputs[i],
                engine.infer(input).unwrap(),
                "task {i} with {backend} backend"
            );
        }
    }
}

#[test]
fn int8_plans_are_self_consistent_and_tolerance_bounded() {
    // The lossy backend's pipeline contract, split in two: static
    // activation scales make region inference bit-exactly consistent
    // with full-map int8 inference, so a pipelined int8 plan must
    // reproduce single-device int8 output *exactly* under every
    // planner — quantization error is a property of the backend, not
    // of the partitioning. Against the f32 reference the output only
    // has to stay inside the empirical degradation budget.
    let cluster = Cluster::paper_heterogeneous_6();
    let params = CostParams::wifi_50mbps();
    let model = zoo::mnist_toy();
    let input = Tensor::random(model.input_shape(), 33);
    let reference = Engine::with_seed(&model, 7)
        .with_backend(EngineBackend::Reference)
        .infer(&input)
        .unwrap();
    let engine = Engine::with_seed(&model, 7).with_backend(EngineBackend::Int8);
    let full = engine.infer(&input).unwrap();
    let budget = 0.05
        * reference
            .data()
            .iter()
            .fold(1.0f32, |acc, v| acc.max(v.abs()));
    for planner in planners() {
        let plan = planner
            .plan(&PlanRequest::new(&model, &cluster, &params))
            .unwrap();
        plan.validate(&model, &cluster).unwrap();
        let report = PipelineRuntime::new(&model, &plan, &engine)
            .run(vec![input.clone()])
            .unwrap();
        assert_eq!(
            report.outputs[0],
            full,
            "{} int8 pipeline diverged from single-device int8",
            planner.name()
        );
        let worst = report.outputs[0]
            .data()
            .iter()
            .zip(reference.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            worst <= budget,
            "{}: int8 error {worst} exceeds budget {budget}",
            planner.name()
        );
    }
}

#[test]
fn plans_are_deterministic() {
    let model = zoo::vgg16().features();
    let cluster = Cluster::paper_heterogeneous();
    let params = CostParams::wifi_50mbps();
    for planner in planners().into_iter().filter(|p| p.name() != "BFS") {
        let a = planner
            .plan(&PlanRequest::new(&model, &cluster, &params))
            .unwrap();
        let b = planner
            .plan(&PlanRequest::new(&model, &cluster, &params))
            .unwrap();
        assert_eq!(a, b, "{} is nondeterministic", planner.name());
    }
}

#[test]
fn graph_models_flow_end_to_end() {
    // Small residual model through plan -> validate -> simulate ->
    // execute; covers the block-as-special-layer path everywhere.
    let model = Model::new(
        "mini-resnet",
        Shape::new(3, 32, 32),
        vec![
            pico::model::Layer::conv("stem", pico::model::ConvSpec::square(3, 8, 3, 1, 1)).into(),
            pico::model::Unit::Block(pico::model::Block::residual(
                "res1",
                vec![
                    pico::model::Layer::conv("a", pico::model::ConvSpec::square(8, 8, 3, 1, 1)),
                    pico::model::Layer::conv("b", pico::model::ConvSpec::square(8, 8, 3, 1, 1)),
                ],
                vec![],
            )),
            pico::model::Layer::pool("pool", pico::model::PoolSpec::max(2, 2)).into(),
            pico::model::Unit::Block(pico::model::Block::residual(
                "res2",
                vec![
                    pico::model::Layer::conv("c", pico::model::ConvSpec::square(8, 16, 3, 2, 1)),
                    pico::model::Layer::conv("d", pico::model::ConvSpec::square(16, 16, 3, 1, 1)),
                ],
                vec![pico::model::Layer::conv(
                    "proj",
                    pico::model::ConvSpec::square(8, 16, 1, 2, 0),
                )],
            )),
        ],
    )
    .unwrap();
    let deployment = Pico::new(model, Cluster::pi_cluster(3, 1.0));
    let plan = deployment.plan().unwrap();
    let report = deployment
        .execute_verified(
            &plan,
            vec![Tensor::random(deployment.model().input_shape(), 1)],
            55,
        )
        .unwrap();
    assert_eq!(report.outputs.len(), 1);
    let sim_report = deployment.simulate(&plan, &Arrivals::closed_loop(20));
    assert!(sim_report.throughput > 0.0);
}
