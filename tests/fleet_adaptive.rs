//! Live workload-adaptive re-planning, end to end and deterministic:
//! the ramp trace accelerates from idle past the cheapest plan's
//! sustainable band, the hysteresis kernel notices through the
//! inter-arrival EWMA, and the replayer performs an audit-gated warm
//! swap to a higher-throughput frontier entry. The contract under test:
//!
//! 1. **The controller actually fires** — at least one switch lands on
//!    the ramp, and none on the steady trace (λ stays in-band).
//! 2. **Zero drops** — every arrival is completed or rejected with a
//!    typed error, switches notwithstanding.
//! 3. **Bit-exactness** — every served output equals clean
//!    single-device inference, across the plan switch.
//! 4. **Seed-invariance** — the input seed perturbs tensor contents
//!    only, so all seeds produce the identical switch schedule.
//! 5. **The DES mirror agrees** — `FleetSim` over the same `(t,
//!    tenant)` arrivals with the same kernel reproduces the replayer's
//!    switch schedule record for record, in virtual time.

use pico::prelude::*;
use pico::serve::{build_script, ReplayScript, ScriptSpec, ServeEvent, SwitchRecord};
use pico::sim::FleetSim;

fn setup() -> (Model, Cluster, CostParams) {
    (
        zoo::mnist_toy(),
        Cluster::pi_cluster(4, 1.0),
        CostParams::wifi_50mbps(),
    )
}

/// The policy the CLI defaults to: hysteresis windows spanning two
/// batch latencies of the starting (cheapest) plan.
fn policy_for(frontier: &FleetFrontier) -> pico::sim::ReplanPolicy {
    pico::sim::ReplanPolicy {
        window: 2.0 * frontier.entries()[frontier.cheapest()].latency,
        ..pico::sim::ReplanPolicy::default()
    }
}

/// Strips a scripted trace down to the `(t, tenant)` pairs the DES
/// mirror consumes.
fn arrival_times(events: &[ServeEvent]) -> Vec<(f64, usize)> {
    events
        .iter()
        .map(|e| match e {
            ServeEvent::Arrival { t, tenant, .. } => (*t, *tenant),
            ServeEvent::Swap { t, .. } => panic!("scripted swap at t={t} in an adaptive trace"),
        })
        .collect()
}

#[test]
fn ramp_replans_identically_across_seeds_with_bit_exact_outputs() {
    let (m, c, p) = setup();
    let mut schedules: Vec<Vec<SwitchRecord>> = Vec::new();
    for seed in [7u64, 11, 23] {
        let spec = ScriptSpec {
            tasks: 96,
            tenants: 2,
            seed,
            swap_at: None,
        };
        let rp = build_script(&m, &c, &p, ReplayScript::Ramp, &spec).unwrap();
        let policy = policy_for(&rp.frontier);
        let engine = Engine::with_seed(&m, seed);
        let (outcome, switches) = Replayer::new(&m, &c, &p, &engine, rp.config.clone())
            .run_adaptive(&rp.frontier, policy, &rp.events)
            .unwrap();
        let label = format!("ramp/seed{seed}");

        // 1. The accelerating ramp must drive at least one audit-gated
        // switch, and every committed switch is counted as a warm swap.
        assert!(!switches.is_empty(), "{label}: controller never fired");
        assert_eq!(outcome.swaps, switches.len() as u64, "{label}");
        assert!(outcome.swap_rejections.is_empty(), "{label}");
        for s in &switches {
            assert!(
                rp.frontier.switchable(s.from, s.to),
                "{label}: switch {} -> {} is not audit-approved",
                s.from,
                s.to
            );
        }

        // 2. Zero drops: all arrivals accounted for, nothing vanished.
        let admitted: u64 = outcome.per_tenant.iter().map(|t| t.admitted).sum();
        let completed: u64 = outcome.per_tenant.iter().map(|t| t.completed).sum();
        assert_eq!(completed, admitted, "{label}: admitted task dropped");
        assert_eq!(
            outcome.completed.len() + outcome.rejections.len(),
            spec.tasks,
            "{label}: arrivals unaccounted for"
        );

        // 3. Bit-exactness across the switch: each served output equals
        // clean single-device inference on the task's own input.
        let inputs: Vec<Tensor> = (0..spec.tasks)
            .map(|k| Tensor::random(m.input_shape(), seed * 1000 + k as u64))
            .collect();
        for done in &outcome.completed {
            let expect = engine.infer(&inputs[done.seq]).unwrap();
            assert_eq!(
                done.output.data(),
                expect.data(),
                "{label}: task {} diverged",
                done.seq
            );
        }

        // 5. The DES mirror: same arrivals, same kernel, same schedule.
        let kernel = rp.frontier.kernel(rp.frontier.cheapest(), policy);
        let mirror = FleetSim::new(rp.config.batch, rp.config.tenants.clone());
        let (report, mirror_switches) = mirror.run(&arrival_times(&rp.events), kernel);
        assert_eq!(
            mirror_switches, switches,
            "{label}: DES mirror diverged from the replayer"
        );
        assert_eq!(report.swaps, outcome.swaps, "{label}");

        schedules.push(switches);
    }

    // 4. Seed-invariance: arrival times come from the script alone, so
    // every seed decides the same switches at the same virtual times.
    assert_eq!(schedules[0], schedules[1], "seeds 7 and 11 disagree");
    assert_eq!(schedules[0], schedules[2], "seeds 7 and 23 disagree");
}

#[test]
fn steady_trace_holds_the_cheapest_plan() {
    let (m, c, p) = setup();
    let spec = ScriptSpec {
        tasks: 48,
        tenants: 2,
        seed: 7,
        swap_at: None,
    };
    let rp = build_script(&m, &c, &p, ReplayScript::Steady, &spec).unwrap();
    let policy = policy_for(&rp.frontier);
    let engine = Engine::with_seed(&m, 7);
    let (outcome, switches) = Replayer::new(&m, &c, &p, &engine, rp.config.clone())
        .run_adaptive(&rp.frontier, policy, &rp.events)
        .unwrap();
    // A steady in-band λ never leaves the hysteresis margin: no switch,
    // no swap, and still zero drops.
    assert!(
        switches.is_empty(),
        "steady trace must not replan, got {switches:?}"
    );
    assert_eq!(outcome.swaps, 0);
    assert_eq!(
        outcome.completed.len() + outcome.rejections.len(),
        spec.tasks
    );
}
