//! Deterministic chaos harness: scripted device failures pushed through
//! the *threaded* runtime, across a matrix of weight seeds, failure
//! schedules, and compute backends (the degraded re-planned stream runs
//! under the reference loops, the im2col/GEMM fast path, and the AVX2
//! SIMD path). Every completed task must be bit-exact against clean
//! single-device inference, the outage must be recorded in the report,
//! and throttled throughput must degrade no worse than the cost model
//! predicts for the degraded plan. The lossy int8 backend gets its own
//! schedule: degraded output must stay bit-exactly self-consistent with
//! clean int8 inference and tolerance-bounded against the f32 oracle.

use pico::model::{ConvSpec, Layer};
use pico::partition::{Assignment, ExecutionMode, Stage};
use pico::prelude::*;

fn setup() -> (Model, Cluster, CostParams) {
    (
        zoo::mnist_toy(),
        Cluster::pi_cluster(4, 1.0),
        CostParams::wifi_50mbps(),
    )
}

/// Three qualitatively different outages, aimed at devices the plan
/// actually uses: an early-stage death, a late-stage death, and a
/// two-device cascade.
fn schedules(plan: &Plan) -> Vec<FailureSchedule> {
    let first = plan
        .stages
        .first()
        .expect("non-empty plan")
        .assignments
        .iter()
        .find(|a| !a.is_empty())
        .expect("non-empty stage")
        .device;
    let last = plan
        .stages
        .last()
        .expect("non-empty plan")
        .assignments
        .iter()
        .rev()
        .find(|a| !a.is_empty())
        .expect("non-empty stage")
        .device;
    vec![
        FailureSchedule::new().fail(first, 1),
        FailureSchedule::new().fail(last, 2),
        FailureSchedule::new().fail(first, 1).fail(last, 3),
    ]
}

#[test]
fn chaos_matrix_is_bit_exact_across_seeds_and_schedules() {
    let (m, c, p) = setup();
    let plan = PicoPlanner.plan(&PlanRequest::new(&m, &c, &p)).unwrap();
    let n = 5;
    for seed in [11u64, 22, 33] {
        let inputs: Vec<Tensor> = (0..n)
            .map(|i| Tensor::random(m.input_shape(), seed ^ (i as u64)))
            .collect();
        let oracle = Engine::with_seed(&m, seed).with_backend(EngineBackend::Reference);
        let references: Vec<Tensor> = inputs.iter().map(|x| oracle.infer(x).unwrap()).collect();
        for backend in EngineBackend::BIT_EXACT {
            let engine = Engine::with_seed(&m, seed).with_backend(backend);
            for (si, schedule) in schedules(&plan).into_iter().enumerate() {
                let scripted: Vec<usize> = schedule.entries().iter().map(|f| f.device).collect();
                let report = PipelineRuntime::builder(&m, &plan, &engine)
                    .failure_schedule(schedule)
                    .recovery(RecoveryPolicy::new(c.clone(), p))
                    .build()
                    .run(inputs.clone())
                    .unwrap_or_else(|e| panic!("seed {seed} schedule {si} {backend}: {e}"));
                assert_eq!(
                    report.outputs.len(),
                    n,
                    "seed {seed} schedule {si} {backend}: tasks lost"
                );
                for (i, reference) in references.iter().enumerate() {
                    assert_eq!(
                        &report.outputs[i], reference,
                        "seed {seed} schedule {si} {backend}: task {i} diverged from clean \
                         inference"
                    );
                }
                assert!(
                    !report.failures.is_empty(),
                    "seed {seed} schedule {si} {backend}: outage went unrecorded"
                );
                for f in &report.failures {
                    assert!(
                        scripted.contains(&f.device),
                        "seed {seed} schedule {si} {backend}: unscripted device {} reported dead",
                        f.device
                    );
                }
            }
        }
    }
}

#[test]
fn int8_chaos_schedule_degrades_within_tolerance() {
    // One cascade outage under the quantized backend. Re-planning moves
    // row ranges between devices, but static activation scales make
    // int8 region inference bit-exactly consistent with the full map:
    // the degraded stream must reproduce clean single-device int8
    // output exactly, and quantization error against the f32 reference
    // must stay inside the empirical degradation budget — the outage
    // may cost throughput, never extra accuracy.
    let (m, c, p) = setup();
    let plan = PicoPlanner.plan(&PlanRequest::new(&m, &c, &p)).unwrap();
    let schedule = schedules(&plan).pop().expect("cascade schedule");
    let engine = Engine::with_seed(&m, 11).with_backend(EngineBackend::Int8);
    let oracle = Engine::with_seed(&m, 11).with_backend(EngineBackend::Reference);
    let inputs: Vec<Tensor> = (0..5)
        .map(|i| Tensor::random(m.input_shape(), 70 + i))
        .collect();
    let report = PipelineRuntime::builder(&m, &plan, &engine)
        .failure_schedule(schedule)
        .recovery(RecoveryPolicy::new(c.clone(), p))
        .build()
        .run(inputs.clone())
        .unwrap();
    assert!(!report.failures.is_empty(), "outage went unrecorded");
    for (i, input) in inputs.iter().enumerate() {
        let clean_int8 = engine.infer(input).unwrap();
        assert_eq!(
            report.outputs[i], clean_int8,
            "task {i}: degraded int8 diverged from clean int8"
        );
        let reference = oracle.infer(input).unwrap();
        let budget = 0.05
            * reference
                .data()
                .iter()
                .fold(1.0f32, |acc, v| acc.max(v.abs()));
        let worst = report.outputs[i]
            .data()
            .iter()
            .zip(reference.data())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            worst <= budget,
            "task {i}: int8 error {worst} exceeds budget {budget}"
        );
    }
}

#[test]
fn chaos_runs_are_deterministic() {
    // Same seed + same schedule: identical outputs and identical
    // failure records, run after run.
    let (m, c, p) = setup();
    let plan = PicoPlanner.plan(&PlanRequest::new(&m, &c, &p)).unwrap();
    let engine = Engine::with_seed(&m, 5);
    let inputs: Vec<Tensor> = (0..4)
        .map(|i| Tensor::random(m.input_shape(), 90 + i))
        .collect();
    let victim = plan.stages[0].assignments[0].device;
    let run = || {
        PipelineRuntime::builder(&m, &plan, &engine)
            .failure_schedule(FailureSchedule::new().fail(victim, 1))
            .recovery(RecoveryPolicy::new(c.clone(), p))
            .build()
            .run(inputs.clone())
            .unwrap()
    };
    let (a, b) = (run(), run());
    assert_eq!(a.outputs, b.outputs);
    let key = |r: &RunReport| -> Vec<(usize, usize, usize)> {
        r.failures
            .iter()
            .map(|f| (f.device, f.stage, f.task))
            .collect()
    };
    assert_eq!(key(&a), key(&b));
}

#[test]
fn degraded_throughput_tracks_the_cost_model_prediction() {
    // Two equal conv stages on two devices, throttled so each stage
    // sleeps ~30 ms (compute is microseconds). Killing device 0 up
    // front forces the whole stream onto a degraded single-device plan,
    // so the clean/degraded elapsed ratio should track the cost model's
    // period ratio within the acceptance band.
    let m = Model::new(
        "chaos-small",
        Shape::new(4, 12, 12),
        vec![
            Layer::conv("a", ConvSpec::square(4, 4, 3, 1, 1)).into(),
            Layer::conv("b", ConvSpec::square(4, 4, 3, 1, 1)).into(),
        ],
    )
    .unwrap();
    let c = Cluster::pi_cluster(2, 1.0);
    // Effectively free network: periods are pure compute.
    let p = CostParams::new(1e15);
    let h = m.output_shape().height;
    let plan = Plan::new(
        Scheme::Pico,
        ExecutionMode::Pipelined,
        vec![
            Stage::new(Segment::new(0, 1), vec![Assignment::new(0, Rows::full(h))]),
            Stage::new(Segment::new(1, 2), vec![Assignment::new(1, Rows::full(h))]),
        ],
    );
    let engine = Engine::with_seed(&m, 3);
    let stage_flops = m.segment_flops(Segment::new(0, 1), Rows::full(h));
    let device_time = c.device(0).unwrap().compute_time(stage_flops);
    let scale = 0.03 / device_time;
    let n = 10;
    let inputs: Vec<Tensor> = (0..n).map(|i| Tensor::random(m.input_shape(), i)).collect();

    let clean = PipelineRuntime::builder(&m, &plan, &engine)
        .throttle(Throttle::new(c.clone(), p, scale))
        .build()
        .run(inputs.clone())
        .unwrap();
    let degraded = PipelineRuntime::builder(&m, &plan, &engine)
        .throttle(Throttle::new(c.clone(), p, scale))
        .failure_schedule(FailureSchedule::new().fail(0, 0))
        .recovery(RecoveryPolicy::new(c.clone(), p))
        .build()
        .run(inputs.clone())
        .unwrap();

    // Both runs complete every task bit-exactly.
    for (i, input) in inputs.iter().enumerate() {
        let reference = engine.infer(input).unwrap();
        assert_eq!(clean.outputs[i], reference);
        assert_eq!(degraded.outputs[i], reference, "task {i} diverged");
    }
    assert!(degraded.failures.iter().any(|f| f.device == 0));
    let degraded_plan = degraded.degraded_plan.as_ref().expect("re-plan installed");

    let cm = p.cost_model(&m);
    let predicted = cm.evaluate(degraded_plan, &c).period / cm.evaluate(&plan, &c).period;
    let measured = degraded.elapsed.as_secs_f64() / clean.elapsed.as_secs_f64();
    assert!(
        measured < predicted * 1.2,
        "degraded run {measured:.2}x slower, cost model predicted {predicted:.2}x"
    );
    assert!(
        measured > predicted * 0.6,
        "degraded run only {measured:.2}x slower than clean — prediction {predicted:.2}x \
         suggests the failure was not actually degrading"
    );
}
