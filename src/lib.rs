//! # PICO — Pipelined Cooperative CNN Inference for IoT Edge Clusters
//!
//! A from-scratch Rust reproduction of *"Towards Efficient Inference:
//! Adaptively Cooperate in Heterogeneous IoT Edge Cluster"* (ICDCS
//! 2021): split a CNN into pipeline stages across a cluster of weak,
//! heterogeneous edge devices, partition feature maps with overlapping
//! halos inside each stage, and adaptively switch between pipelined and
//! fused one-stage execution as the workload changes.
//!
//! This crate is the facade over the workspace:
//!
//! | Crate | Re-exported as | Provides |
//! |---|---|---|
//! | `pico-model` | [`model`] | CNN layer graphs, model zoo, FLOPs/receptive-field analysis |
//! | `pico-tensor` | [`tensor`] | CHW f32 engine with bit-exact halo split/stitch |
//! | `pico-partition` | [`partition`] | cost model + LW/EFL/OFL/PICO/BFS planners |
//! | `pico-sim` | [`sim`] | arrival streams, queueing simulation, M/D/1, APICO |
//! | `pico-fleet` | [`fleet`] | Pareto plan frontiers, concurrent plan cache, re-planning glue |
//! | `pico-audit` | [`audit`] | multi-pass plan diagnostics engine (`pico audit`) |
//! | `pico-runtime` | [`runtime`] | threaded Fig.-6 pipeline executor |
//! | `pico-telemetry` | [`telemetry`] | structured spans/counters/histograms, Chrome traces |
//! | `pico-core` | [`core`] | the [`Pico`] one-stop facade |
//! | `pico-bench` | [`bench`] | paper figures/tables + the `pico bench` micro-benchmark suites |
//!
//! # Quickstart
//!
//! ```
//! use pico::prelude::*;
//!
//! // VGG16's feature extractor on eight 1 GHz Raspberry-Pi-class
//! // devices behind a 50 Mbps WiFi AP — the paper's testbed.
//! let pico = Pico::new(zoo::vgg16().features(), Cluster::pi_cluster(8, 1.0));
//!
//! let plan = pico.plan()?;                       // PICO pipeline
//! let metrics = pico.predict(&plan);             // Eqs. 10/11
//! let report = pico.simulate(&plan, &Arrivals::closed_loop(50));
//! assert!(report.throughput > 0.0);
//! assert!(metrics.period <= metrics.latency);
//! # Ok::<(), pico::partition::PlanError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use pico_audit as audit;
pub use pico_bench as bench;
pub use pico_core as core;
pub use pico_fleet as fleet;
pub use pico_model as model;
pub use pico_partition as partition;
pub use pico_runtime as runtime;
pub use pico_serve as serve;
pub use pico_sim as sim;
pub use pico_telemetry as telemetry;
pub use pico_tensor as tensor;

pub use pico_core::Pico;

/// Everything most programs need, one `use` away.
pub mod prelude {
    pub use pico_audit::{AuditConfig, AuditReport, Auditor};
    pub use pico_core::{ChurnReport, ChurnRunError, EpochRecord, Pico};
    pub use pico_fleet::{CacheKey, ClusterSignature, FleetConfig, FleetFrontier, PlanCache};
    pub use pico_model::{zoo, Model, Rows, Segment, Shape};
    pub use pico_partition::{
        BfsOptimal, ChurnEpoch, ChurnError, ChurnEvent, ChurnKind, ChurnMembership, Cluster,
        ClusterSchedule, Code, CostParams, Device, Diagnostic, EarlyFused, GridFused, Interleaved,
        LayerWise, OptimalFused, PicoPlanner, Plan, PlanRequest, Planner, Scheme, Severity,
    };
    pub use pico_runtime::{
        FailureRecord, FailureSchedule, InjectedFailure, PipelineRuntime, RecoveryPolicy,
        RunReport, RuntimeBuilder, RuntimeError, Throttle,
    };
    pub use pico_serve::{
        BatchPolicy, Replayer, ServeConfig, ServeError, ServeHandle, ServeRequest, TenantPolicy,
    };
    pub use pico_sim::{AdaptiveScheduler, Arrivals, ReplanPolicy, Simulation};
    pub use pico_telemetry::{names, Ctx, Event, EventKind, Recorder, TraceSummary};
    pub use pico_tensor::{Engine, EngineBackend, Scratch, Tensor};
}
