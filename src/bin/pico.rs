//! The `pico` command-line tool: plan, predict, simulate, and compare
//! cooperative-inference deployments from the shell.
//!
//! ```console
//! $ pico plan --model vgg16 --devices 8 --ghz 1.0
//! $ pico compare --model yolov2 --cluster paper
//! $ pico simulate --model vgg16 --devices 8 --load 1.2
//! $ pico memory --model vgg16 --cluster paper
//! ```

use std::process::ExitCode;

use pico::model::Model;
use pico::partition::memory::{plan_memory, single_device_memory};
use pico::prelude::*;
use pico::serve::{build_script, fleet_frontier, ReplayScript, ScriptSpec};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage: pico <command> [options]
       pico trace <summarize|validate> <file.json>
       pico bench <kernels|planner|e2e> [options]
       pico fleet <build|show> [options]

commands:
  plan       plan a deployment and print the stage layout
  audit      multi-pass plan diagnostics (PA*** codes) per scheme
  compare    predict every scheme (LW/EFL/OFL/GRID/ILV/PICO) side by side
  simulate   run a Poisson workload through the queueing simulator
  run        execute a plan on the threaded runtime (optionally traced)
  serve      deterministically replay a scripted multi-tenant serving
             trace through the runtime (admission control, adaptive
             micro-batching, audit-gated mid-trace warm swap)
  trace      summarize or validate a Chrome trace written by `run`
  bench      offline micro-benchmarks (compute kernels under every
             backend, planner wall-time + calibration fit, end-to-end)
  memory     per-device memory footprint of the PICO plan
  fleet      build the audit-certified Pareto plan frontier for a
             deployment through the process-wide plan cache (`build`),
             or inspect the cache (`show`)
  frontier   the period/latency Pareto frontier (T_lim sweep)
  model      per-layer summary of the model (shapes, params, FLOPs)

options:
  --model <vgg16|yolov2|resnet34|inception_v3|mobilenet_v1|mnist_toy>
  --cluster <paper|paper6>   the paper's heterogeneous mixes, or:
  --devices <n> --ghz <f>    a homogeneous cluster (default 8 x 1.0)
  --bandwidth <mbps>         shared link bandwidth (default 50)
  --t-lim <seconds>          pipeline latency limit (PICO plans)
  --scheme <lw|efl|ofl|grid|ilv|pico>  planner for `plan`/`run`
                             (default pico)
                             `audit`: audit one scheme (default: all)
  --memory-budget <MB>       `audit`: warn when a device exceeds this
  --redundancy-limit <f>     `audit`: warn above this redundancy ratio
  --deep                     `audit`: also run the PA3xx deep passes
                             (symbolic dataflow, queue stability, and
                             the pico<->ofl warm-swap pair)
  --lambda <lo:hi[x]>        `audit --deep`: certify stability over the
                             workload band [lo, hi] tasks/s; a trailing
                             `x` reads the bounds as fractions of each
                             plan's critical rate (e.g. 0.3:0.9x)
  --deep-memory-budget <MB>  `audit --deep`: fail when a device's
                             certified bound (weights + activations +
                             im2col scratch) exceeds this
  --swap-budget <MB>         `audit --deep`: per-device budget for both
                             plans of the swap pair held together
  --channel-capacity <n>     `audit --deep`: inter-stage channel bound
                             assumed by the deadlock pass (default:
                             unbounded, which cannot deadlock)
  --load <fraction>          `simulate`: arrival rate as a fraction of
                             EFL capacity (default 1.0)
  --minutes <m>              `simulate`: virtual duration (default 10)
  --tasks <n>                `run`: tasks to push through (default 4)
                             `serve`: trace arrivals (default 96)
  --seed <n>                 `run`/`serve`: synthetic weight/input seed
  --replay <steady|bursty|ramp>  `serve`: which scripted trace to replay
  --tenants <n>              `serve`: tenant count (default 2)
  --swap-at <k|none>         `serve`: schedule the frontier warm swap
                             at arrival <k> (default: tasks/2)
  --adaptive                 `serve`: replace the scripted swap with the
                             hysteresis re-planning controller — the
                             arrival-rate EWMA drives audit-gated warm
                             swaps across the cached plan frontier
  --min-replans <n>          `serve --adaptive`: fail unless at least
                             <n> controller switches fired
  --replan-window <s>        `serve --adaptive`: hysteresis evaluation
                             window in virtual seconds (default: twice
                             the starting plan's batch latency)
  --throttle-scale <f>       `run`: stretch stages to cost-model
                             proportions (scaled by <f>)
  --fail-device <id>@<task>  `run`: inject a failure — device <id> dies
                             from task <task> on; repeatable. Failures
                             are retried on survivors and the pipeline
                             re-planned when a stage loses every device
  --churn <file.script>      `run`: replay a membership churn script
                             (leave/rejoin/join/recapacity events, see
                             DESIGN.md §17). Departures are absorbed
                             in-run; re-admissions re-plan behind the
                             deep-audit and switch-pair gates and
                             invalidate stale plan-cache entries
  --trace <file.json>        `run`/`serve`: write a Chrome trace-event
                             file
  --backend <reference|im2col|simd|int8>
                             `run`/`serve`: compute backend for every
                             engine (simd is bit-identical to the
                             scalar backends; int8 is tolerance-bounded
                             low-precision)
  --threads <n>              `run`/`serve`: GEMM worker threads per
                             engine (default 1; results are
                             bit-identical for any thread count)
  --warmup/--iters/--runs <n> `bench`: measurement protocol overrides
  --json <file>              `bench`/`audit`: also write the
                             machine-readable report (round-tripped
                             through the strict parser before the
                             command succeeds)
                             `fleet build`: write the frontier artifact
  --gate-ratio <x>           `bench kernels`: fail unless simd beats
                             the reference conv3x3/64ch case by >= x
  --scaling-gate <x>         `bench kernels`: fail unless 4 simd
                             threads beat 1 by >= x on the gate case
                             (skipped on hosts with < 4 cores)";

/// Tiny hand-rolled `--key value` parser (no CLI dependency).
struct Opts {
    pairs: Vec<(String, String)>,
}

impl Opts {
    fn parse(args: &[String]) -> Result<Opts, String> {
        let mut pairs = Vec::new();
        let mut it = args.iter();
        while let Some(key) = it.next() {
            let Some(name) = key.strip_prefix("--") else {
                return Err(format!("unexpected argument `{key}`"));
            };
            // Boolean flags take no value.
            if name == "deep" || name == "adaptive" {
                pairs.push((name.to_owned(), "true".to_owned()));
                continue;
            }
            let value = it
                .next()
                .ok_or_else(|| format!("missing value for --{name}"))?;
            pairs.push((name.to_owned(), value.clone()));
        }
        Ok(Opts { pairs })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Every occurrence of a repeatable option, in order.
    fn get_all<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a str> {
        self.pairs
            .iter()
            .filter(move |(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn get_f64(&self, name: &str, default: f64) -> Result<f64, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name}: bad number `{v}`")),
        }
    }

    fn get_usize(&self, name: &str, default: usize) -> Result<usize, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{name}: bad integer `{v}`")),
        }
    }
}

/// Parses a `--lambda` band spec: `<lo:hi>` in tasks/s, or `<lo:hi>x`
/// with the bounds read as fractions of each plan's critical rate λ*.
fn parse_lambda(spec: &str) -> Result<(f64, f64, bool), String> {
    let (body, fractional) = match spec.strip_suffix('x') {
        Some(b) => (b, true),
        None => (spec, false),
    };
    let (lo, hi) = body
        .split_once(':')
        .ok_or_else(|| format!("--lambda: expected `<lo:hi[x]>`, got `{spec}`"))?;
    let lo: f64 = lo
        .parse()
        .map_err(|_| format!("--lambda: bad number `{lo}`"))?;
    let hi: f64 = hi
        .parse()
        .map_err(|_| format!("--lambda: bad number `{hi}`"))?;
    if !lo.is_finite() || !hi.is_finite() || lo < 0.0 || hi < lo {
        return Err(format!("--lambda: need 0 <= lo <= hi in `{spec}`"));
    }
    Ok((lo, hi, fractional))
}

/// The critical arrival rate λ* = 1/p of a plan's bottleneck station —
/// the same profiles the deep stability pass certifies against.
fn max_stable_rate_of(pico: &Pico, plan: &Plan) -> f64 {
    let sim = Simulation::new(pico.model(), pico.cluster(), &pico.params());
    let period = sim
        .station_profiles(plan)
        .iter()
        .map(|s| s.service)
        .fold(0.0, f64::max);
    pico::sim::mdone::max_stable_rate(period)
}

/// Parses a `--fail-device` spec: `<id>@<task>`, or a bare `<id>`
/// meaning "dead from the first task on".
fn parse_failure(spec: &str) -> Result<(usize, usize), String> {
    let (dev, task) = spec.split_once('@').unwrap_or((spec, "0"));
    let device = dev
        .parse()
        .map_err(|_| format!("--fail-device: bad device id in `{spec}`"))?;
    let from_task = task
        .parse()
        .map_err(|_| format!("--fail-device: bad task index in `{spec}`"))?;
    Ok((device, from_task))
}

fn model_by_name(name: &str) -> Result<Model, String> {
    Ok(match name {
        "vgg16" => zoo::vgg16().features(),
        "yolov2" => zoo::yolov2(),
        "resnet34" => zoo::resnet34().features(),
        "inception_v3" => zoo::inception_v3().features(),
        "mobilenet_v1" => zoo::mobilenet_v1().features(),
        "mnist_toy" => zoo::mnist_toy(),
        other => return Err(format!("unknown model `{other}`")),
    })
}

fn cluster_from(opts: &Opts) -> Result<Cluster, String> {
    match opts.get("cluster") {
        Some("paper") => Ok(Cluster::paper_heterogeneous()),
        Some("paper6") => Ok(Cluster::paper_heterogeneous_6()),
        Some(other) => Err(format!("unknown cluster `{other}`")),
        None => {
            let devices = opts.get_usize("devices", 8)?;
            let ghz = opts.get_f64("ghz", 1.0)?;
            if devices == 0 || ghz <= 0.0 {
                return Err("need --devices >= 1 and --ghz > 0".to_owned());
            }
            Ok(Cluster::pi_cluster(devices, ghz))
        }
    }
}

fn deployment_from(opts: &Opts) -> Result<Pico, String> {
    let model = model_by_name(opts.get("model").unwrap_or("vgg16"))?;
    let cluster = cluster_from(opts)?;
    let mut params = CostParams::new(opts.get_f64("bandwidth", 50.0)? * 1e6);
    if let Some(t) = opts.get("t-lim") {
        let secs: f64 = t
            .parse()
            .map_err(|_| format!("--t-lim: bad number `{t}`"))?;
        params = params.with_t_lim(secs);
    }
    let mut pico = Pico::new(model, cluster).with_params(params);
    if let Some(name) = opts.get("backend") {
        let backend = EngineBackend::parse(name).ok_or_else(|| {
            format!("--backend: unknown backend `{name}` (reference|im2col|simd|int8)")
        })?;
        pico = pico.with_backend(backend);
    }
    let threads = opts.get_usize("threads", 1)?;
    if threads == 0 {
        return Err("need --threads >= 1".to_owned());
    }
    pico = pico.with_engine_threads(threads);
    Ok(pico)
}

fn planner_by_name(name: &str) -> Result<Box<dyn Planner>, String> {
    Ok(match name {
        "lw" => Box::new(LayerWise::new()),
        "efl" => Box::new(EarlyFused::new()),
        "ofl" => Box::new(OptimalFused::new()),
        "grid" => Box::new(GridFused::new()),
        "ilv" => Box::new(Interleaved::new()),
        "pico" => Box::new(PicoPlanner::new()),
        other => return Err(format!("unknown scheme `{other}`")),
    })
}

/// `pico bench <kernels|planner|e2e>` — the offline micro-benchmark
/// suites, printed as a table and optionally written as strict JSON.
fn bench_command(rest: &[String]) -> Result<(), String> {
    use pico::bench::harness::BenchConfig;
    use pico::bench::report::BenchReport;
    use pico::bench::suites;

    let Some((suite, flags)) = rest.split_first() else {
        return Err("usage: pico bench <kernels|planner|e2e> [options]".to_owned());
    };
    let opts = Opts::parse(flags)?;
    let defaults = BenchConfig::default();
    let warmup = opts.get_usize("warmup", defaults.warmup)?;
    let iters = opts.get_usize("iters", defaults.iters)?;
    let runs = opts.get_usize("runs", defaults.runs)?;
    if iters == 0 || runs == 0 {
        return Err("need --iters >= 1 and --runs >= 1".to_owned());
    }
    let cfg = BenchConfig::new(warmup, iters, runs);

    let report = match suite.as_str() {
        "kernels" => suites::kernels(cfg),
        "planner" => suites::planner(cfg),
        "e2e" => suites::e2e(cfg),
        other => return Err(format!("unknown bench suite `{other}`")),
    };

    println!(
        "suite {} (warmup {}, iters {}, runs {}; compare ratios, not wall-clock)",
        report.suite, cfg.warmup, cfg.iters, cfg.runs
    );
    println!(
        "{:<28} {:>12} {:>12} {:>8}",
        "case", "median(ns)", "min(ns)", "GFLOP/s"
    );
    for r in &report.records {
        println!(
            "{:<28} {:>12} {:>12} {:>8.2}",
            r.name,
            r.median_ns,
            r.min_ns,
            r.gflops()
        );
    }

    if suite == "kernels" {
        let scalar = suites::backend_speedup(&report, suites::GATE_CASE)
            .ok_or_else(|| "gate case missing from kernel report".to_owned())?;
        let simd = suites::simd_speedup(&report, suites::GATE_CASE)
            .ok_or_else(|| "gate case missing from kernel report".to_owned())?;
        println!(
            "speedup {}: {scalar:.2}x im2col, {simd:.2}x simd over reference",
            suites::GATE_CASE
        );
        let scaling = suites::thread_scaling(&report, suites::GATE_CASE)
            .ok_or_else(|| "gate case missing from kernel report".to_owned())?;
        println!(
            "thread scaling {}: {scaling:.2}x simd 1 -> {} thread(s)",
            suites::GATE_CASE,
            suites::SCALING_THREADS
        );
        if let Some(gate) = opts.get("gate-ratio") {
            let gate: f64 = gate
                .parse()
                .map_err(|_| format!("--gate-ratio: bad number `{gate}`"))?;
            if simd < gate {
                return Err(format!(
                    "speedup gate failed: {simd:.2}x < required {gate:.2}x simd over \
                     reference on {}",
                    suites::GATE_CASE
                ));
            }
        }
        if let Some(gate) = opts.get("scaling-gate") {
            let gate: f64 = gate
                .parse()
                .map_err(|_| format!("--scaling-gate: bad number `{gate}`"))?;
            // The scaling smoke needs real cores to mean anything: a
            // 1-core CI runner times the 4-thread row under contention,
            // so the gate is enforced only where >= SCALING_THREADS
            // cores exist.
            let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
            if cores < suites::SCALING_THREADS {
                println!(
                    "scaling gate skipped: {cores} core(s) < {} required",
                    suites::SCALING_THREADS
                );
            } else if scaling < gate {
                return Err(format!(
                    "scaling gate failed: {scaling:.2}x < required {gate:.2}x for \
                     {} thread(s) on {}",
                    suites::SCALING_THREADS,
                    suites::GATE_CASE
                ));
            }
        }
    } else {
        for flag in ["gate-ratio", "scaling-gate"] {
            if opts.get(flag).is_some() {
                return Err(format!("--{flag} applies to `bench kernels` only"));
            }
        }
    }

    if suite == "planner" {
        // The fit `CostParams::calibrated` would adopt from this
        // machine's fast-backend conv kernels (see EXPERIMENTS.md).
        let (params, samples) = suites::calibration(&suites::kernels(cfg));
        println!(
            "calibration fit over {} conv samples at {:.1} GHz nominal: alpha_scale = {:.4}",
            samples.len(),
            suites::CALIBRATION_CAPACITY / 1e9,
            params.alpha_scale
        );
    }

    if let Some(path) = opts.get("json") {
        let text = report.to_json();
        // The document is the interface: prove it parses strictly and
        // round-trips before calling the run a success.
        let parsed =
            BenchReport::from_json(&text).map_err(|e| format!("--json self-check: {e}"))?;
        if parsed != report {
            return Err("--json self-check: round-trip mismatch".to_owned());
        }
        std::fs::write(path, &text).map_err(|e| format!("--json {path}: {e}"))?;
        println!("wrote {} record(s) to {path}", report.records.len());
    }
    Ok(())
}

/// `pico fleet <build|show>` — the audit-certified Pareto plan
/// frontier for a deployment, served through the process-wide plan
/// cache (`build`), or a look at the cache itself (`show`).
fn fleet_command(rest: &[String]) -> Result<(), String> {
    let Some((sub, flags)) = rest.split_first() else {
        return Err("usage: pico fleet <build|show> [options]".to_owned());
    };
    let opts = Opts::parse(flags)?;
    let pico = deployment_from(&opts)?;
    match sub.as_str() {
        "build" => {
            let frontier = fleet_frontier(
                pico.model(),
                pico.cluster(),
                &pico.params(),
                &Recorder::noop(),
            )
            .map_err(|e| e.to_string())?;
            let entries = frontier.entries();
            println!(
                "frontier for model {:016x} on cluster {:016x}: {} plan(s)",
                frontier.fingerprint().as_u64(),
                frontier.signature().as_u64(),
                entries.len()
            );
            println!("entry  scheme  stages  period(s)  latency(s)  resident(MB)  sustains(/s)");
            for (i, e) in entries.iter().enumerate() {
                let mark = if i == frontier.max_throughput() {
                    "  <- max throughput"
                } else if i == frontier.cheapest() {
                    "  <- cheapest"
                } else {
                    ""
                };
                println!(
                    "{i:<6} {:<7} {:>6}  {:>9.4}  {:>10.4}  {:>12.1}  {:>12.3}{mark}",
                    e.plan.scheme.to_string(),
                    e.plan.stage_count(),
                    e.period,
                    e.latency,
                    e.resident_bytes as f64 / 1e6,
                    e.band.hi
                );
            }
            println!("switch matrix (`+` = audit-approved warm swap, row from, column to):");
            for i in 0..entries.len() {
                let row: String = (0..entries.len())
                    .map(|j| if frontier.switchable(i, j) { '+' } else { '.' })
                    .collect();
                println!("  {i}: {row}");
            }
            if let Some(path) = opts.get("json") {
                std::fs::write(path, frontier.to_json())
                    .map_err(|e| format!("--json {path}: {e}"))?;
                println!("wrote {} frontier entri(es) to {path}", entries.len());
            }
            let s = PlanCache::global().stats();
            println!(
                "plan cache: {} hit(s), {} miss(es), {} eviction(s), {} resident",
                s.hits, s.misses, s.evictions, s.entries
            );
            Ok(())
        }
        "show" => {
            let key = CacheKey::new(
                pico.model(),
                pico.cluster(),
                &pico.params(),
                pico::sim::WorkloadBand::point(0.0),
            );
            match PlanCache::global().get(&key, &Recorder::noop()) {
                Some(f) => println!(
                    "deployment {:016x}: cached ({} frontier entri(es))",
                    key.digest(),
                    f.entries().len()
                ),
                None => println!("deployment {:016x}: not cached", key.digest()),
            }
            let s = PlanCache::global().stats();
            println!(
                "plan cache: {} hit(s), {} miss(es), {} eviction(s), {} resident",
                s.hits, s.misses, s.evictions, s.entries
            );
            Ok(())
        }
        other => Err(format!("unknown fleet subcommand `{other}`")),
    }
}

/// `pico trace <summarize|validate> <file.json>` — offline inspection
/// of Chrome trace-event files written by `pico run --trace`.
fn trace_command(rest: &[String]) -> Result<(), String> {
    let [sub, path] = rest else {
        return Err("usage: pico trace <summarize|validate> <file.json>".to_owned());
    };
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let parsed =
        pico::telemetry::trace::parse_chrome_trace(&text).map_err(|e| format!("{path}: {e}"))?;
    match sub.as_str() {
        "validate" => {
            println!(
                "{path}: valid Chrome trace ({} span(s), {} counter sample(s), {} instant(s))",
                parsed.spans.len(),
                parsed.counters,
                parsed.instants
            );
            Ok(())
        }
        "summarize" => {
            print!("{}", TraceSummary::from_trace(&parsed));
            Ok(())
        }
        other => Err(format!("unknown trace subcommand `{other}`")),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let Some((command, rest)) = args.split_first() else {
        return Err("no command given".to_owned());
    };
    if command == "trace" {
        // `trace` takes positional operands, not --key value pairs.
        return trace_command(rest);
    }
    if command == "bench" {
        // `bench` takes a positional suite name before its flags.
        return bench_command(rest);
    }
    if command == "fleet" {
        // `fleet` takes a positional subcommand before its flags.
        return fleet_command(rest);
    }
    let opts = Opts::parse(rest)?;
    let pico = deployment_from(&opts)?;

    match command.as_str() {
        "plan" => {
            let planner = planner_by_name(opts.get("scheme").unwrap_or("pico"))?;
            let plan = pico.plan_with(&planner).map_err(|e| e.to_string())?;
            print!("{}", pico.describe(&plan));
            Ok(())
        }
        "audit" => {
            let mut config = AuditConfig::default();
            if let Some(mb) = opts.get("memory-budget") {
                let mb: f64 = mb
                    .parse()
                    .map_err(|_| format!("--memory-budget: bad number `{mb}`"))?;
                config = config.with_memory_budget((mb * 1e6).max(0.0) as usize);
            }
            if let Some(r) = opts.get("redundancy-limit") {
                let ratio: f64 = r
                    .parse()
                    .map_err(|_| format!("--redundancy-limit: bad number `{r}`"))?;
                config = config.with_redundancy_threshold(ratio);
            }
            let deep = opts.get("deep").is_some();
            let band = opts.get("lambda").map(parse_lambda).transpose()?;
            if band.is_some() && !deep {
                return Err("--lambda requires --deep".to_owned());
            }
            for flag in ["deep-memory-budget", "swap-budget", "channel-capacity"] {
                if opts.get(flag).is_some() && !deep {
                    return Err(format!("--{flag} requires --deep"));
                }
            }
            if let Some(mb) = opts.get("deep-memory-budget") {
                let mb: f64 = mb
                    .parse()
                    .map_err(|_| format!("--deep-memory-budget: bad number `{mb}`"))?;
                config = config.with_deep_memory_budget((mb * 1e6).max(0.0) as usize);
            }
            if let Some(mb) = opts.get("swap-budget") {
                let mb: f64 = mb
                    .parse()
                    .map_err(|_| format!("--swap-budget: bad number `{mb}`"))?;
                config = config.with_swap_budget((mb * 1e6).max(0.0) as usize);
            }
            if let Some(cap) = opts.get("channel-capacity") {
                let cap: usize = cap
                    .parse()
                    .map_err(|_| format!("--channel-capacity: bad integer `{cap}`"))?;
                config = config.with_channel_capacity(cap);
            }
            let schemes: Vec<&str> = match opts.get("scheme") {
                Some(s) => vec![s],
                None => vec!["lw", "efl", "ofl", "grid", "ilv", "pico"],
            };
            let mut errors = 0;
            let mut entries: Vec<(String, AuditReport)> = Vec::new();
            let mut planned: Vec<(&str, Plan)> = Vec::new();
            for name in schemes {
                let planner = planner_by_name(name)?;
                match pico.plan_with(&planner) {
                    Ok(plan) => {
                        let mut cfg = config.clone();
                        if let Some((lo, hi, fractional)) = band {
                            let scale = if fractional {
                                max_stable_rate_of(&pico, &plan)
                            } else {
                                1.0
                            };
                            cfg = cfg.with_workload_band(pico::audit::WorkloadBand::new(
                                lo * scale,
                                hi * scale,
                            ));
                        }
                        let auditor = Auditor::new(pico.model(), pico.cluster())
                            .with_params(pico.params())
                            .with_config(cfg);
                        let report = if deep {
                            auditor.audit_deep(&plan)
                        } else {
                            auditor.audit(&plan)
                        };
                        errors += report.errors().count();
                        println!("{name}: {report}");
                        entries.push((name.to_owned(), report));
                        planned.push((name, plan));
                    }
                    Err(e) => println!("{name}: did not plan ({e})"),
                }
            }
            // The paper's canonical APICO switch set is the PICO
            // pipeline paired with the fused one-stage OFL plan; audit
            // that pair's warm-swap safety whenever both planned.
            if deep {
                let by_name = |n: &str| planned.iter().find(|(name, _)| *name == n).map(|(_, p)| p);
                if let (Some(a), Some(b)) = (by_name("pico"), by_name("ofl")) {
                    let report = Auditor::new(pico.model(), pico.cluster())
                        .with_params(pico.params())
                        .with_config(config.clone())
                        .audit_switch_pair(a, b);
                    errors += report.errors().count();
                    println!("pico+ofl (switch pair): {report}");
                    entries.push(("pico+ofl".to_owned(), report));
                }
            }
            if let Some(path) = opts.get("json") {
                let text = pico::audit::json::reports_to_json(&entries);
                // The document is the interface: prove it parses
                // strictly and round-trips before calling it a success.
                let parsed = pico::audit::json::reports_from_json(&text)
                    .map_err(|e| format!("--json self-check: {e}"))?;
                if parsed != entries {
                    return Err("--json self-check: round-trip mismatch".to_owned());
                }
                std::fs::write(path, &text).map_err(|e| format!("--json {path}: {e}"))?;
                println!("wrote {} audit(s) to {path}", entries.len());
            }
            if errors > 0 {
                Err(format!("{errors} error-level diagnostic(s)"))
            } else {
                Ok(())
            }
        }
        "compare" => {
            println!("scheme  stages  period(s)  latency(s)  tasks/min");
            for name in ["lw", "efl", "ofl", "grid", "ilv", "pico"] {
                let planner = planner_by_name(name)?;
                match pico.plan_with(&planner) {
                    Ok(plan) => {
                        let m = pico.predict(&plan);
                        println!(
                            "{:<7} {:>6}  {:>9.3}  {:>10.3}  {:>9.1}",
                            plan.scheme.to_string(),
                            plan.stage_count(),
                            m.period,
                            m.latency,
                            60.0 * m.throughput()
                        );
                    }
                    Err(e) => println!("{name:<7} failed: {e}"),
                }
            }
            Ok(())
        }
        "simulate" => {
            let load = opts.get_f64("load", 1.0)?;
            let minutes = opts.get_f64("minutes", 10.0)?;
            let efl = pico
                .plan_with(&EarlyFused::new())
                .map_err(|e| e.to_string())?;
            let capacity = 1.0 / pico.predict(&efl).period;
            let arrivals = Arrivals::poisson(load * capacity, minutes * 60.0, 42);
            println!(
                "load = {load} x EFL capacity ({:.3} tasks/s) over {minutes} min",
                capacity
            );
            println!("scheme  completed  avg_lat(s)  p95_lat(s)  util");
            for name in ["efl", "ofl", "grid", "pico"] {
                let planner = planner_by_name(name)?;
                if let Ok(plan) = pico.plan_with(&planner) {
                    let r = pico.simulate(&plan, &arrivals);
                    println!(
                        "{:<7} {:>9}  {:>10.2}  {:>10.2}  {:>4.0}%",
                        plan.scheme.to_string(),
                        r.completed,
                        r.avg_latency,
                        r.p95_latency,
                        100.0 * r.avg_utilization()
                    );
                }
            }
            let (r, decisions) = pico
                .run_adaptive(&arrivals, 30.0, 0.4)
                .map_err(|e| e.to_string())?;
            println!(
                "{:<7} {:>9}  {:>10.2}  {:>10.2}  {:>4.0}%  ({} switches)",
                "APICO",
                r.completed,
                r.avg_latency,
                r.p95_latency,
                100.0 * r.avg_utilization(),
                decisions.len().saturating_sub(1)
            );
            Ok(())
        }
        "run" => {
            let tasks = opts.get_usize("tasks", 4)?;
            let seed = opts.get_usize("seed", 7)? as u64;
            let planner = planner_by_name(opts.get("scheme").unwrap_or("pico"))?;
            let rec = Recorder::in_memory();
            let pico = pico.with_recorder(rec.clone());
            let plan = pico.plan_with(&planner).map_err(|e| e.to_string())?;
            let inputs: Vec<Tensor> = (0..tasks)
                .map(|i| Tensor::random(pico.model().input_shape(), seed ^ (i as u64)))
                .collect();
            let mut schedule = FailureSchedule::new();
            for spec in opts.get_all("fail-device") {
                let (device, from_task) = parse_failure(spec)?;
                schedule = schedule.fail(device, from_task);
            }
            if let Some(path) = opts.get("churn") {
                if opts.get("throttle-scale").is_some() || !schedule.is_empty() {
                    return Err(
                        "--churn cannot be combined with --fail-device or --throttle-scale"
                            .to_owned(),
                    );
                }
                let text =
                    std::fs::read_to_string(path).map_err(|e| format!("--churn {path}: {e}"))?;
                let churn =
                    ClusterSchedule::parse(&text).map_err(|e| format!("--churn {path}: {e}"))?;
                let gate = Auditor::new(pico.model(), pico.cluster()).audit_churn(&churn);
                if !gate.is_executable() {
                    return Err(format!(
                        "--churn {path}: schedule rejected by the churn audit:\n{gate}"
                    ));
                }
                let report = pico
                    .execute_churn(inputs, seed, &churn)
                    .map_err(|e| e.to_string())?;
                for (i, ep) in report.epochs.iter().enumerate() {
                    let mut boundary = String::new();
                    if !ep.admitted.is_empty() {
                        boundary.push_str(&format!(" admitted {:?}", ep.admitted));
                    }
                    if !ep.resized.is_empty() {
                        boundary.push_str(&format!(" resized {:?}", ep.resized));
                    }
                    if ep.switch_committed {
                        boundary.push_str(" (switch committed)");
                    }
                    println!(
                        "epoch {i}: {} task(s) from task {} on devices {:?} under {}{boundary}, \
                         {} departure(s) absorbed",
                        ep.tasks, ep.start_task, ep.devices, ep.scheme, ep.failures
                    );
                }
                let stats = pico.plan_cache().stats();
                println!(
                    "plan cache: {} hit(s), {} miss(es), {} invalidation(s)",
                    stats.hits, stats.misses, stats.invalidations
                );
                println!(
                    "{} task(s) completed under churn, 0 dropped",
                    report.outputs.len()
                );
                if let Some(path) = opts.get("trace") {
                    let events = rec.snapshot();
                    std::fs::write(path, pico::telemetry::trace::chrome_trace(&events))
                        .map_err(|e| format!("--trace {path}: {e}"))?;
                    println!("wrote {} event(s) to {path}", events.len());
                }
                return Ok(());
            }
            let report = match (opts.get("throttle-scale"), schedule.is_empty()) {
                (Some(_), false) => {
                    return Err("--fail-device cannot be combined with --throttle-scale".to_owned())
                }
                (Some(s), true) => {
                    let scale: f64 = s
                        .parse()
                        .map_err(|_| format!("--throttle-scale: bad number `{s}`"))?;
                    pico.execute_throttled(&plan, inputs, seed, scale)
                }
                (None, false) => pico.execute_resilient(&plan, inputs, seed, schedule),
                (None, true) => pico.execute(&plan, inputs, seed),
            }
            .map_err(|e| e.to_string())?;
            for f in &report.failures {
                println!(
                    "device {} failed at stage {} task {}: {}",
                    f.device, f.stage, f.task, f.cause
                );
            }
            if let Some(degraded) = &report.degraded_plan {
                let excluded: Vec<usize> = report.failures.iter().map(|f| f.device).collect();
                println!(
                    "re-planned without {excluded:?}: degraded plan has {} stage(s)",
                    degraded.stage_count()
                );
            }
            println!(
                "{} plan, {} task(s) in {:.3}s: {} tasks/s",
                plan.scheme,
                report.outputs.len(),
                report.elapsed.as_secs_f64(),
                report
                    .throughput()
                    .map_or_else(|| "n/a".to_owned(), |t| format!("{t:.2}"))
            );
            if let (Some(period), Some(stage)) =
                (report.measured_period(), report.bottleneck_stage())
            {
                println!("measured period {period:.4}s, bottleneck stage {stage}");
            }
            let events = rec.snapshot();
            print!("{}", TraceSummary::from_events(&events));
            // PA106: does the measured bottleneck agree with the plan's
            // cost-model claim?
            let observed: Vec<f64> = report.stage_stats.iter().map(|s| s.busy_secs).collect();
            let audit = Auditor::new(pico.model(), pico.cluster())
                .with_params(pico.params())
                .with_config(AuditConfig::default().with_observed_stage_busy(observed))
                .audit(&plan);
            for d in audit
                .warnings()
                .filter(|d| d.code == Code::BottleneckMismatch)
            {
                println!("warning: {d}");
            }
            if let Some(path) = opts.get("trace") {
                std::fs::write(path, pico::telemetry::trace::chrome_trace(&events))
                    .map_err(|e| format!("--trace {path}: {e}"))?;
                println!("wrote {} event(s) to {path}", events.len());
            }
            Ok(())
        }
        "serve" => {
            let spec_name = opts
                .get("replay")
                .ok_or("serve requires --replay <steady|bursty|ramp>")?;
            let script = ReplayScript::parse(spec_name)
                .ok_or_else(|| format!("--replay: unknown script `{spec_name}`"))?;
            let tasks = opts.get_usize("tasks", 96)?;
            let seed = opts.get_usize("seed", 7)? as u64;
            let tenants = opts.get_usize("tenants", 2)?;
            let adaptive = opts.get("adaptive").is_some();
            for flag in ["min-replans", "replan-window"] {
                if opts.get(flag).is_some() && !adaptive {
                    return Err(format!("--{flag} requires --adaptive"));
                }
            }
            let swap_at = if adaptive {
                if opts.get("swap-at").is_some() {
                    return Err(
                        "--swap-at conflicts with --adaptive: the re-planning controller \
                         schedules switches itself"
                            .to_owned(),
                    );
                }
                None
            } else {
                match opts.get("swap-at") {
                    Some("none") => None,
                    Some(v) => Some(
                        v.parse()
                            .map_err(|_| format!("--swap-at: bad index `{v}`"))?,
                    ),
                    None => Some(tasks / 2),
                }
            };
            let spec = ScriptSpec {
                tasks,
                tenants,
                seed,
                swap_at,
            };
            let rp = build_script(pico.model(), pico.cluster(), &pico.params(), script, &spec)
                .map_err(|e| e.to_string())?;
            let rec = Recorder::in_memory();
            let mut engine = Engine::with_seed(pico.model(), seed);
            if let Some(backend) = pico.backend() {
                engine = engine.with_backend(backend);
            }
            if pico.engine_threads() > 1 {
                engine = engine.with_threads(pico.engine_threads());
            }
            let params = pico.params();
            let replayer = Replayer::new(pico.model(), pico.cluster(), &params, &engine, rp.config)
                .with_recorder(rec.clone());
            let (outcome, switches) = if adaptive {
                let start = rp.frontier.cheapest();
                let window =
                    opts.get_f64("replan-window", 2.0 * rp.frontier.entries()[start].latency)?;
                let policy = ReplanPolicy {
                    window,
                    ..ReplanPolicy::default()
                };
                replayer
                    .run_adaptive(&rp.frontier, policy, &rp.events)
                    .map_err(|e| e.to_string())?
            } else {
                let outcome = replayer
                    .run(&rp.initial, &rp.events)
                    .map_err(|e| e.to_string())?;
                (outcome, Vec::new())
            };

            println!(
                "replayed `{}`: {} arrival(s), {} tenant(s), seed {seed}",
                script.name(),
                tasks,
                tenants
            );
            println!("tenant  admitted  rejected  completed");
            for (t, s) in outcome.per_tenant.iter().enumerate() {
                println!(
                    "t{t:<5} {:>9} {:>9} {:>10}",
                    s.admitted, s.rejected, s.completed
                );
            }
            println!(
                "{} batch(es): size min {} / mean {:.2} / max {}",
                outcome.batch_sizes.len(),
                outcome.min_batch(),
                outcome.mean_batch(),
                outcome.max_batch()
            );
            println!(
                "{} warm swap(s) across {} epoch(s); virtual makespan {:.3}s",
                outcome.swaps, outcome.epochs, outcome.makespan
            );
            for msg in &outcome.swap_rejections {
                println!("swap rejected by audit: {msg}");
            }
            for s in &switches {
                println!(
                    "replan at t={:.3}s: frontier entry {} -> {} (lambda-hat {:.2} tasks/s)",
                    s.at, s.from, s.to, s.lambda
                );
            }
            let min_replans = opts.get_usize("min-replans", 0)?;
            if switches.len() < min_replans {
                return Err(format!(
                    "adaptive gate failed: {} replan(s) fired, required at least {min_replans}",
                    switches.len()
                ));
            }
            for r in outcome.rejections.iter().take(5) {
                println!("rejected task {} (tenant {}): {}", r.seq, r.tenant, r.error);
            }
            if outcome.rejections.len() > 5 {
                println!("... and {} more rejection(s)", outcome.rejections.len() - 5);
            }
            let events = rec.snapshot();
            print!("{}", TraceSummary::from_events(&events));
            if let Some(path) = opts.get("trace") {
                std::fs::write(path, pico::telemetry::trace::chrome_trace(&events))
                    .map_err(|e| format!("--trace {path}: {e}"))?;
                println!("wrote {} event(s) to {path}", events.len());
            }

            // The serving contract: every arrival is either completed or
            // rejected with a typed error — an admitted task can never
            // silently vanish, warm swap or not.
            let served = outcome.completed.len() as u64;
            let admitted: u64 = outcome.per_tenant.iter().map(|s| s.admitted).sum();
            let rejected = outcome.rejections.len() as u64;
            if served != admitted || served + rejected != tasks as u64 {
                return Err(format!(
                    "dropped tasks: {admitted} admitted, {served} served, \
                     {rejected} rejected of {tasks} arrivals"
                ));
            }
            println!("zero drops: {served} served + {rejected} rejected = {tasks} arrivals");
            Ok(())
        }
        "model" => {
            print!("{}", pico::model::summary::to_table(pico.model()));
            Ok(())
        }
        "frontier" => {
            let steps = opts.get_usize("steps", 10)?;
            println!("t_lim(s)  period(s)  latency(s)  stages");
            for p in pico.frontier(steps) {
                let lim = p
                    .t_lim
                    .map(|t| format!("{t:.3}"))
                    .unwrap_or_else(|| "none".to_owned());
                println!(
                    "{lim:>8}  {:>9.3}  {:>10.3}  {:>6}",
                    p.period,
                    p.latency,
                    p.plan.stage_count()
                );
            }
            Ok(())
        }
        "memory" => {
            let plan = pico.plan().map_err(|e| e.to_string())?;
            let base = single_device_memory(pico.model());
            println!(
                "single device: {:.1} MB weights + {:.1} MB activations",
                base.weights_bytes as f64 / 1e6,
                base.peak_activation_bytes as f64 / 1e6
            );
            println!("device  weights(MB)  peak_act(MB)  total(MB)");
            for d in plan_memory(pico.model(), &plan) {
                println!(
                    "d{:<5} {:>12.1}  {:>12.1}  {:>9.1}",
                    d.device,
                    d.weights_bytes as f64 / 1e6,
                    d.peak_activation_bytes as f64 / 1e6,
                    d.total_bytes() as f64 / 1e6
                );
            }
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn plan_and_compare_run() {
        run(&sv(&["plan", "--model", "mnist_toy", "--devices", "3"])).unwrap();
        run(&sv(&["compare", "--model", "mnist_toy", "--devices", "3"])).unwrap();
        run(&sv(&[
            "memory",
            "--model",
            "mnist_toy",
            "--cluster",
            "paper6",
        ]))
        .unwrap();
    }

    #[test]
    fn audit_runs_clean_on_every_scheme() {
        run(&sv(&["audit", "--model", "mnist_toy", "--devices", "4"])).unwrap();
        run(&sv(&[
            "audit",
            "--model",
            "mnist_toy",
            "--devices",
            "4",
            "--scheme",
            "pico",
            "--memory-budget",
            "512",
            "--redundancy-limit",
            "0.9",
        ]))
        .unwrap();
        assert!(run(&sv(&[
            "audit",
            "--model",
            "mnist_toy",
            "--devices",
            "4",
            "--memory-budget",
            "abc",
        ]))
        .is_err());
    }

    #[test]
    fn deep_audit_runs_clean_and_writes_json() {
        let path = std::env::temp_dir().join(format!("pico-cli-audit-{}.json", std::process::id()));
        let path = path.to_str().expect("utf-8 temp path").to_owned();
        // Absolute band, fractional band, and the JSON self-check.
        run(&sv(&[
            "audit",
            "--model",
            "mnist_toy",
            "--devices",
            "4",
            "--deep",
            "--lambda",
            "0.3:0.9x",
            "--json",
            &path,
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let reports = pico::audit::json::reports_from_json(&text).unwrap();
        // Six schemes plus the pico+ofl switch pair.
        assert_eq!(reports.len(), 7);
        assert!(reports.iter().any(|(name, _)| name == "pico+ofl"));
        assert!(reports.iter().all(|(_, r)| r.is_executable()));
        std::fs::remove_file(&path).ok();
        run(&sv(&[
            "audit",
            "--model",
            "mnist_toy",
            "--devices",
            "4",
            "--deep",
            "--lambda",
            "0.0:0.1",
            "--channel-capacity",
            "4",
        ]))
        .unwrap();
    }

    #[test]
    fn deep_audit_rejects_bad_flags_and_flags_saturating_bands() {
        let base = ["audit", "--model", "mnist_toy", "--devices", "4"];
        let with = |extra: &[&str]| {
            let mut v = base.to_vec();
            v.extend_from_slice(extra);
            sv(&v)
        };
        assert!(
            run(&with(&["--lambda", "0.3:0.9x"])).is_err(),
            "needs --deep"
        );
        assert!(run(&with(&["--channel-capacity", "4"])).is_err());
        assert!(run(&with(&["--deep", "--lambda", "nope"])).is_err());
        assert!(run(&with(&["--deep", "--lambda", "2.0:1.0"])).is_err());
        assert!(run(&with(&["--deep", "--lambda", "-1.0:0.5"])).is_err());
        // A band reaching λ* is an error-level PA303 verdict.
        assert!(run(&with(&["--deep", "--lambda", "0.5:2.0x"])).is_err());
        // A tiny certified budget is an error-level PA302 verdict.
        assert!(run(&with(&["--deep", "--deep-memory-budget", "0.001"])).is_err());
    }

    #[test]
    fn serve_replays_with_zero_drops_and_rejects_bad_flags() {
        run(&sv(&[
            "serve",
            "--model",
            "mnist_toy",
            "--devices",
            "4",
            "--replay",
            "bursty",
            "--tasks",
            "48",
        ]))
        .unwrap();
        run(&sv(&[
            "serve",
            "--model",
            "mnist_toy",
            "--devices",
            "4",
            "--replay",
            "steady",
            "--tasks",
            "16",
            "--swap-at",
            "none",
        ]))
        .unwrap();
        assert!(
            run(&sv(&["serve", "--model", "mnist_toy"])).is_err(),
            "needs --replay"
        );
        assert!(run(&sv(&["serve", "--model", "mnist_toy", "--replay", "bogus"])).is_err());
        assert!(run(&sv(&[
            "serve",
            "--model",
            "mnist_toy",
            "--replay",
            "ramp",
            "--swap-at",
            "x",
        ]))
        .is_err());
    }

    #[test]
    fn serve_adaptive_replans_with_zero_drops() {
        // The CI smoke contract: the ramp trace must push the EWMA far
        // enough that the controller fires at least one audit-gated
        // switch, and no task may be dropped across it.
        run(&sv(&[
            "serve",
            "--model",
            "mnist_toy",
            "--devices",
            "4",
            "--replay",
            "ramp",
            "--adaptive",
            "--min-replans",
            "1",
        ]))
        .unwrap();
        // Scripted swaps and the controller are mutually exclusive.
        assert!(run(&sv(&[
            "serve",
            "--model",
            "mnist_toy",
            "--devices",
            "4",
            "--replay",
            "ramp",
            "--adaptive",
            "--swap-at",
            "8",
        ]))
        .is_err());
        // The adaptive-only flags demand --adaptive.
        assert!(run(&sv(&[
            "serve",
            "--model",
            "mnist_toy",
            "--devices",
            "4",
            "--replay",
            "ramp",
            "--min-replans",
            "1",
        ]))
        .is_err());
        // A steady trace holds λ in-band: an impossible gate fails.
        assert!(run(&sv(&[
            "serve",
            "--model",
            "mnist_toy",
            "--devices",
            "4",
            "--replay",
            "steady",
            "--tasks",
            "16",
            "--adaptive",
            "--min-replans",
            "64",
        ]))
        .is_err());
    }

    #[test]
    fn fleet_build_writes_artifact_and_show_reports_cache() {
        let path = std::env::temp_dir().join(format!("pico-cli-fleet-{}.json", std::process::id()));
        let path = path.to_str().expect("utf-8 temp path").to_owned();
        run(&sv(&[
            "fleet",
            "build",
            "--model",
            "mnist_toy",
            "--devices",
            "4",
            "--json",
            &path,
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"entries\""));
        std::fs::remove_file(&path).ok();
        // After a build, `show` sees the cached deployment.
        run(&sv(&[
            "fleet",
            "show",
            "--model",
            "mnist_toy",
            "--devices",
            "4",
        ]))
        .unwrap();
        assert!(run(&sv(&["fleet"])).is_err());
        assert!(run(&sv(&["fleet", "frobnicate"])).is_err());
    }

    #[test]
    fn simulate_runs_briefly() {
        run(&sv(&[
            "simulate",
            "--model",
            "mnist_toy",
            "--devices",
            "4",
            "--load",
            "0.8",
            "--minutes",
            "1",
        ]))
        .unwrap();
    }

    #[test]
    fn errors_are_reported() {
        assert!(run(&sv(&["plan", "--model", "nope"])).is_err());
        assert!(run(&sv(&["frobnicate"])).is_err());
        assert!(run(&sv(&["plan", "--devices"])).is_err());
        assert!(run(&sv(&["plan", "positional"])).is_err());
        assert!(run(&sv(&["plan", "--ghz", "abc"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn frontier_command_runs() {
        run(&sv(&[
            "frontier",
            "--model",
            "mnist_toy",
            "--devices",
            "4",
            "--steps",
            "4",
        ]))
        .unwrap();
    }

    #[test]
    fn model_summary_runs() {
        run(&sv(&["model", "--model", "mobilenet_v1"])).unwrap();
    }

    #[test]
    fn run_writes_a_trace_the_trace_command_accepts() {
        let path = std::env::temp_dir().join(format!("pico-cli-trace-{}.json", std::process::id()));
        let path = path.to_str().expect("utf-8 temp path").to_owned();
        run(&sv(&[
            "run",
            "--model",
            "mnist_toy",
            "--devices",
            "3",
            "--tasks",
            "2",
            "--trace",
            &path,
        ]))
        .unwrap();
        run(&sv(&["trace", "validate", &path])).unwrap();
        run(&sv(&["trace", "summarize", &path])).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn run_accepts_backend_and_threads_overrides() {
        for backend in ["reference", "im2col", "simd", "int8"] {
            run(&sv(&[
                "run",
                "--model",
                "mnist_toy",
                "--devices",
                "3",
                "--tasks",
                "1",
                "--backend",
                backend,
                "--threads",
                "2",
            ]))
            .unwrap();
        }
        let base = ["run", "--model", "mnist_toy", "--devices", "3"];
        let with = |extra: &[&str]| {
            let mut v = base.to_vec();
            v.extend_from_slice(extra);
            sv(&v)
        };
        assert!(run(&with(&["--backend", "avx512"])).is_err());
        assert!(run(&with(&["--threads", "0"])).is_err());
        assert!(run(&with(&["--threads", "abc"])).is_err());
    }

    #[test]
    fn run_supports_throttle_and_scheme() {
        run(&sv(&[
            "run",
            "--model",
            "mnist_toy",
            "--devices",
            "3",
            "--tasks",
            "2",
            "--scheme",
            "efl",
            "--throttle-scale",
            "0.0001",
        ]))
        .unwrap();
        assert!(run(&sv(&[
            "run",
            "--model",
            "mnist_toy",
            "--devices",
            "3",
            "--throttle-scale",
            "abc",
        ]))
        .is_err());
    }

    #[test]
    fn run_fail_device_injects_and_recovers() {
        // Mid-stream failure: retried on survivors / re-planned.
        run(&sv(&[
            "run",
            "--model",
            "mnist_toy",
            "--devices",
            "4",
            "--tasks",
            "3",
            "--fail-device",
            "1@1",
        ]))
        .unwrap();
        // Bare id: dead from the first task on.
        run(&sv(&[
            "run",
            "--model",
            "mnist_toy",
            "--devices",
            "4",
            "--tasks",
            "2",
            "--fail-device",
            "2",
        ]))
        .unwrap();
    }

    #[test]
    fn run_churn_replays_a_script_and_reports_epochs() {
        let path =
            std::env::temp_dir().join(format!("pico-cli-churn-{}.script", std::process::id()));
        let path = path.to_str().expect("utf-8 temp path").to_owned();
        std::fs::write(&path, "# flap device 3\nleave 3@1\nrejoin 3@3\n").unwrap();
        run(&sv(&[
            "run",
            "--model",
            "mnist_toy",
            "--devices",
            "4",
            "--tasks",
            "5",
            "--churn",
            &path,
        ]))
        .unwrap();
        // The interleaved planner is a first-class scheme.
        run(&sv(&[
            "run",
            "--model",
            "mnist_toy",
            "--devices",
            "3",
            "--tasks",
            "1",
            "--scheme",
            "ilv",
        ]))
        .unwrap();
        // An illegal schedule is rejected by the churn audit gate.
        std::fs::write(&path, "rejoin 1@2\n").unwrap();
        assert!(run(&sv(&[
            "run",
            "--model",
            "mnist_toy",
            "--devices",
            "4",
            "--churn",
            &path
        ]))
        .is_err());
        // --churn conflicts with the single-run failure injector.
        std::fs::write(&path, "leave 3@1\nrejoin 3@2\n").unwrap();
        assert!(run(&sv(&[
            "run",
            "--model",
            "mnist_toy",
            "--devices",
            "4",
            "--churn",
            &path,
            "--fail-device",
            "1"
        ]))
        .is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fail_device_rejects_bad_specs() {
        let base = ["run", "--model", "mnist_toy", "--devices", "4"];
        let with = |extra: &[&str]| {
            let mut v = base.to_vec();
            v.extend_from_slice(extra);
            sv(&v)
        };
        assert!(run(&with(&["--fail-device", "x@1"])).is_err());
        assert!(run(&with(&["--fail-device", "1@y"])).is_err());
        assert!(run(&with(&["--fail-device", "1", "--throttle-scale", "0.001"])).is_err());
    }

    #[test]
    fn bench_kernels_writes_a_valid_report_and_gates_on_ratio() {
        let path = std::env::temp_dir().join(format!("pico-cli-bench-{}.json", std::process::id()));
        let path = path.to_str().expect("utf-8 temp path").to_owned();
        run(&sv(&[
            "bench",
            "kernels",
            "--warmup",
            "0",
            "--iters",
            "1",
            "--runs",
            "1",
            "--json",
            &path,
            "--gate-ratio",
            "0.0001",
            "--scaling-gate",
            "0.0001",
        ]))
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let report = pico::bench::report::BenchReport::from_json(&text).unwrap();
        assert_eq!(report.suite, "kernels");
        for backend in ["reference", "im2col", "simd", "int8", "simd_mt4"] {
            assert!(report
                .record(&format!("{}/{backend}", pico::bench::suites::GATE_CASE))
                .is_some());
        }
        std::fs::remove_file(&path).ok();
        // An impossible gate fails cleanly.
        assert!(run(&sv(&[
            "bench",
            "kernels",
            "--warmup",
            "0",
            "--iters",
            "1",
            "--runs",
            "1",
            "--gate-ratio",
            "1e12",
        ]))
        .is_err());
    }

    #[test]
    fn bench_e2e_runs_and_bad_invocations_error() {
        run(&sv(&[
            "bench", "e2e", "--warmup", "0", "--iters", "1", "--runs", "1",
        ]))
        .unwrap();
        assert!(run(&sv(&["bench"])).is_err());
        assert!(run(&sv(&["bench", "frobnicate"])).is_err());
        assert!(run(&sv(&["bench", "kernels", "--iters", "0"])).is_err());
        assert!(run(&sv(&["bench", "kernels", "--iters", "abc"])).is_err());
        assert!(run(&sv(&[
            "bench",
            "kernels",
            "--gate-ratio",
            "abc",
            "--iters",
            "1",
            "--warmup",
            "0",
            "--runs",
            "1"
        ]))
        .is_err());
        assert!(run(&sv(&[
            "bench",
            "e2e",
            "--gate-ratio",
            "3",
            "--iters",
            "1",
            "--warmup",
            "0",
            "--runs",
            "1",
        ]))
        .is_err());
        assert!(run(&sv(&[
            "bench",
            "planner",
            "--scaling-gate",
            "2",
            "--iters",
            "1",
            "--warmup",
            "0",
            "--runs",
            "1",
        ]))
        .is_err());
        assert!(run(&sv(&[
            "bench",
            "kernels",
            "--scaling-gate",
            "abc",
            "--iters",
            "1",
            "--warmup",
            "0",
            "--runs",
            "1"
        ]))
        .is_err());
    }

    #[test]
    fn trace_command_rejects_bad_invocations() {
        assert!(run(&sv(&["trace"])).is_err());
        assert!(run(&sv(&["trace", "summarize"])).is_err());
        assert!(run(&sv(&["trace", "validate", "/nonexistent/pico.json"])).is_err());
        let path = std::env::temp_dir().join(format!("pico-cli-bad-{}.json", std::process::id()));
        let path = path.to_str().expect("utf-8 temp path").to_owned();
        std::fs::write(&path, "not a trace").unwrap();
        assert!(run(&sv(&["trace", "validate", &path])).is_err());
        std::fs::write(&path, "{\"traceEvents\":[]}").unwrap();
        assert!(run(&sv(&["trace", "frobnicate", &path])).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn t_lim_and_scheme_options() {
        run(&sv(&[
            "plan",
            "--model",
            "mnist_toy",
            "--devices",
            "4",
            "--scheme",
            "grid",
        ]))
        .unwrap();
        // A very tight limit is a planning error, surfaced cleanly.
        assert!(run(&sv(&[
            "plan",
            "--model",
            "mnist_toy",
            "--devices",
            "4",
            "--t-lim",
            "0.000001",
        ]))
        .is_err());
    }
}
